// Package scene models the physical environments of the paper's evaluation:
// rooms with walls, static clutter, oscillating fans, humans that walk and
// breathe, and first-order specular multipath. A Scene reduces, per frame,
// to a list of fmcw.Return values that internal/fmcw turns into radar data.
package scene

import (
	"math"

	"rfprotect/internal/geom"
)

// Mirror is a specular reflecting plane (a wall face or a metallic cabinet
// front) described by an infinite line through Point with unit Normal.
// Moving scatterers produce first-order image reflections across it with
// amplitude scaled by Reflectivity.
type Mirror struct {
	Point        geom.Point // any point on the plane
	Normal       geom.Point // unit normal
	Reflectivity float64    // amplitude fraction preserved by the bounce
}

// Reflect returns p mirrored across the plane.
func (m Mirror) Reflect(p geom.Point) geom.Point {
	d := p.Sub(m.Point).Dot(m.Normal)
	return p.Sub(m.Normal.Scale(2 * d))
}

// Room is a rectangular environment spanning [0, Width] × [0, Height]
// meters with four reflective walls.
type Room struct {
	Name             string
	Width, Height    float64
	WallReflectivity float64  // first-order wall bounce amplitude fraction
	Cabinets         []Mirror // extra specular clutter (metal cabinets, §11.1)
	// Speckle is the diffuse-multipath richness of the room: the amplitude
	// fraction of random near-target companion reflections added per frame.
	// Metallic environments (the office with its cabinets, §11.1) have high
	// speckle, which perturbs range–angle peaks and degrades localization of
	// humans and ghosts alike.
	Speckle float64
}

// OfficeRoom returns the paper's office environment: 10 × 6.6 m with
// metallic cabinets whose multipath degrades localization (§11.1 attributes
// the office's larger errors to exactly this).
func OfficeRoom() Room {
	return Room{
		Name:             "office",
		Width:            10.0,
		Height:           6.6,
		WallReflectivity: 0.35,
		Speckle:          0.6,
		Cabinets: []Mirror{
			{Point: geom.Point{X: 9.2, Y: 3.0}, Normal: geom.Point{X: -1, Y: 0}, Reflectivity: 0.5},
			{Point: geom.Point{X: 5.0, Y: 6.2}, Normal: geom.Point{X: 0, Y: -1}, Reflectivity: 0.45},
		},
	}
}

// HomeRoom returns the paper's home environment: 15.24 × 7.62 m (50 × 25 ft)
// with softer (drywall/furniture) reflections and no metal cabinets.
func HomeRoom() Room {
	return Room{
		Name:             "home",
		Width:            15.24,
		Height:           7.62,
		WallReflectivity: 0.18,
		Speckle:          0.1,
	}
}

// Walls returns the four wall mirrors of the room.
func (r Room) Walls() []Mirror {
	return []Mirror{
		{Point: geom.Point{X: 0, Y: 0}, Normal: geom.Point{X: 0, Y: 1}, Reflectivity: r.WallReflectivity},         // bottom
		{Point: geom.Point{X: 0, Y: r.Height}, Normal: geom.Point{X: 0, Y: -1}, Reflectivity: r.WallReflectivity}, // top
		{Point: geom.Point{X: 0, Y: 0}, Normal: geom.Point{X: 1, Y: 0}, Reflectivity: r.WallReflectivity},         // left
		{Point: geom.Point{X: r.Width, Y: 0}, Normal: geom.Point{X: -1, Y: 0}, Reflectivity: r.WallReflectivity},  // right
	}
}

// Mirrors returns all specular planes: walls plus cabinets.
func (r Room) Mirrors() []Mirror {
	out := r.Walls()
	return append(out, r.Cabinets...)
}

// Contains reports whether p lies inside the room (with a small margin).
func (r Room) Contains(p geom.Point) bool {
	const eps = 1e-9
	return p.X >= -eps && p.X <= r.Width+eps && p.Y >= -eps && p.Y <= r.Height+eps
}

// Clamp returns p clamped into the room interior with the given margin from
// the walls.
func (r Room) Clamp(p geom.Point, margin float64) geom.Point {
	return geom.Point{
		X: math.Min(math.Max(p.X, margin), r.Width-margin),
		Y: math.Min(math.Max(p.Y, margin), r.Height-margin),
	}
}
