package scene

import (
	"math"

	"rfprotect/internal/geom"
)

// Breathing models chest micro-motion: a sinusoidal radial displacement of
// the reflecting surface. Typical resting adults breathe at 0.2–0.3 Hz with
// ~5 mm chest excursion, which at 6.5 GHz produces an easily measurable
// carrier-phase swing (§11.4).
type Breathing struct {
	Rate      float64 // breaths per second (Hz)
	Amplitude float64 // chest displacement amplitude in meters
	Phase     float64 // initial phase in radians
}

// DefaultBreathing returns a typical resting adult: 0.25 Hz (15 breaths per
// minute), 5 mm excursion.
func DefaultBreathing() Breathing {
	return Breathing{Rate: 0.25, Amplitude: 0.005}
}

// Displacement returns the chest displacement in meters at time t.
func (b Breathing) Displacement(t float64) float64 {
	if b.Rate == 0 || b.Amplitude == 0 {
		return 0
	}
	return b.Amplitude * math.Sin(2*math.Pi*b.Rate*t+b.Phase)
}

// Human is a moving, breathing point scatterer. Its trajectory is sampled at
// SampleRate; positions between samples are linearly interpolated, and the
// human holds its last position after the trajectory ends.
type Human struct {
	Traj       geom.Trajectory
	SampleRate float64 // trajectory samples per second
	RCS        float64 // reflection amplitude (radar cross-section proxy)
	Breathing  Breathing
	Start      float64 // time at which the trajectory begins
}

// NewHuman returns a human following traj at fs samples/second with a
// typical torso RCS and resting breathing.
func NewHuman(traj geom.Trajectory, fs float64) *Human {
	return &Human{Traj: traj, SampleRate: fs, RCS: 1.0, Breathing: DefaultBreathing()}
}

// PositionAt returns the interpolated position at time t.
func (h *Human) PositionAt(t float64) geom.Point {
	if len(h.Traj) == 0 {
		return geom.Point{}
	}
	ft := (t - h.Start) * h.SampleRate
	if ft <= 0 {
		return h.Traj[0]
	}
	i := int(ft)
	if i >= len(h.Traj)-1 {
		return h.Traj[len(h.Traj)-1]
	}
	return geom.Lerp(h.Traj[i], h.Traj[i+1], ft-float64(i))
}

// Active reports whether the human's trajectory is still playing at time t.
func (h *Human) Active(t float64) bool {
	if len(h.Traj) == 0 {
		return false
	}
	end := h.Start + float64(len(h.Traj)-1)/h.SampleRate
	return t >= h.Start && t <= end
}

// Clutter is a static point reflector (furniture, walls seen directly, TV).
// Background subtraction removes it; it is present so the pipeline has
// something to remove.
type Clutter struct {
	Pos       geom.Point
	Amplitude float64
}

// Fan is an oscillating kinetic reflector (a ceiling or desk fan blade):
// a scatterer whose position orbits Center at RotationRate. The paper's
// threat model (§2) requires the eavesdropper to filter such non-human
// periodic motion.
type Fan struct {
	Center       geom.Point
	Radius       float64 // blade-tip orbit radius in meters
	RotationRate float64 // revolutions per second
	Amplitude    float64
}

// PositionAt returns the blade scatterer position at time t.
func (f Fan) PositionAt(t float64) geom.Point {
	a := 2 * math.Pi * f.RotationRate * t
	return geom.Point{
		X: f.Center.X + f.Radius*math.Cos(a),
		Y: f.Center.Y + f.Radius*math.Sin(a),
	}
}
