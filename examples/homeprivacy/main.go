// Home privacy: the motivating scenario of §1 — an eavesdropper mines a
// household's occupancy distribution through the wall; RF-Protect phantoms
// destroy the inference. Combines the full radar chain with the §7
// information-theoretic analysis.
//
//	go run ./examples/homeprivacy
package main

import (
	"fmt"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/privacy"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func main() {
	params := fmcw.DefaultParams()
	rng := rand.New(rand.NewSource(7))

	// Simulate 12 five-second "snapshots" of a home through a day. In each,
	// 0-2 real occupants move; the tag spawns phantoms with probability 0.5.
	const snapshots = 12
	const maxGhosts = 2
	walker := motion.NewGenerator(motion.DefaultConfig(), 99)

	fmt.Println("snapshot  real  ghosts  eavesdropper-count")
	totalReal, totalSeen := 0, 0
	for s := 0; s < snapshots; s++ {
		sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
		if err != nil {
			panic(err)
		}
		sc, ctl := sess.Scene, sess.Ctl

		nReal := rng.Intn(3)
		for h := 0; h < nReal; h++ {
			traj := walker.Trace().Translate(geom.Point{
				X: 2.5 + rng.Float64()*(sc.Room.Width-5),
				Y: 3 + rng.Float64()*3,
			})
			for i, p := range traj {
				traj[i] = sc.Room.Clamp(p, 0.5)
			}
			sc.Humans = append(sc.Humans, scene.NewHuman(traj, motion.SampleRate))
		}
		nGhost := 0
		for g := 0; g < maxGhosts; g++ {
			if rng.Float64() < 0.5 {
				continue
			}
			nGhost++
			traj := walker.Trace().Translate(geom.Point{
				X: sc.Radar.Position.X - 0.5 + rng.Float64(),
				Y: 2.5 + rng.Float64()*1.5,
			})
			for i, p := range traj {
				traj[i] = sc.Room.Clamp(p, 0.5)
			}
			if _, err := ctl.ProgramForRadar(traj, sc.Radar, motion.SampleRate, 0); err != nil {
				panic(err)
			}
		}

		frames := sc.Capture(0, int(5*params.FrameRate), rng)
		pr := radar.NewProcessor(radar.DefaultConfig())
		tracks := radar.TrackDetections(radar.TrackerConfig{},
			pr.ProcessFrames(frames, sc.Radar))
		tracks = radar.FilterHumanTracks(tracks, params.FrameRate)
		fmt.Printf("%8d  %4d  %6d  %18d\n", s, nReal, nGhost, len(tracks))
		totalReal += nReal
		totalSeen += len(tracks)
	}
	fmt.Printf("\ntotals: %d real occupant-sessions, eavesdropper counted %d\n", totalReal, totalSeen)

	// The distribution-level view (§7): how much information about the true
	// occupancy distribution leaks for different phantom strategies?
	fmt.Println("\nmutual information I(X;Z) for N=4 occupants, p=0.2:")
	for _, m := range []int{2, 4, 8} {
		model := privacy.Model{N: 4, P: 0.2, M: m, Q: 0.5}
		fmt.Printf("  M=%d phantoms at q=0.5: %.4f bits (H(X)=%.4f)\n",
			m, model.MutualInformation(), model.EntropyX())
	}
	fmt.Printf("breathing-trace guess success with 2 real, 4 fake: %.2f\n",
		privacy.BreathingGuessProbability(2, 4))
}
