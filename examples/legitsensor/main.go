// Legitimate sensing (Fig. 13): RF-Protect defeats eavesdroppers without
// breaking the user's own authorized sensor, because the tag discloses its
// injected trajectories.
//
//	go run ./examples/legitsensor
package main

import (
	"fmt"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

func main() {
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
	if err != nil {
		panic(err)
	}
	sc, ctl := sess.Scene, sess.Ctl
	params := sc.Params
	tagCfg := sess.Tag.Config()

	// One real person walking, one ghost injected.
	n := 100
	cx := sc.Radar.Position.X
	human := make(geom.Trajectory, n)
	ghost := make(geom.Trajectory, n)
	for i := range human {
		f := float64(i) / float64(n-1)
		human[i] = geom.Point{X: cx - 3 + 2*f, Y: 5 - f}
		ghost[i] = geom.Point{X: cx + 0.3 + f, Y: 2.7 + 2*f}
	}
	sc.Humans = []*scene.Human{scene.NewHuman(human, params.FrameRate)}
	rec, err := ctl.ProgramForRadar(ghost, sc.Radar, params.FrameRate, 0)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(3))
	frames := sc.Capture(0, n, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	tracks := radar.TrackDetections(radar.TrackerConfig{}, pr.ProcessFrames(frames, sc.Radar))

	fmt.Printf("eavesdropper: %d tracks, no way to tell real from fake\n", len(tracks))
	for _, t := range tracks {
		tr := t.Smoothed()
		fmt.Printf("  track %d near %v (err vs human %.2f m, vs ghost %.2f m)\n",
			t.ID, tr.Centroid(),
			geom.MeanPointwiseError(tr, human), geom.MeanPointwiseError(tr, ghost))
	}

	legit := core.NewLegitSensor(tagCfg, sc.Radar)
	humans, ghosts := legit.Filter(tracks, []reflector.GhostRecord{rec})
	fmt.Printf("\nlegitimate sensor with disclosure: kept %d, removed %d\n", len(humans), len(ghosts))
	for _, t := range humans {
		fmt.Printf("  kept track %d: error vs real human %.2f m\n",
			t.ID, geom.MeanPointwiseError(t.Smoothed(), human))
	}
}
