// Quickstart: deploy an RF-Protect tag, inject one ghost, and watch an
// eavesdropper FMCW radar hallucinate it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func main() {
	// 1. A home with an eavesdropper radar on the bottom wall.
	params := fmcw.DefaultParams()
	sc := scene.NewScene(scene.HomeRoom(), params)

	// 2. An RF-Protect system: tag broadside to the radar + trajectory GAN.
	ganCfg := gan.DefaultConfig()
	ganCfg.Hidden = 24 // quickstart-sized generator
	sys, err := core.New(core.Config{
		TagPosition: geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2},
		GAN:         &ganCfg,
		CorpusSize:  600,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("training the trajectory generator (a few seconds)...")
	sys.TrainGenerator(nil, 80)
	sc.Sources = append(sc.Sources, sys.Tag())

	// 3. Inject a ghost: a class-2 (medium range of motion) trajectory
	//    anchored 3 m into the room.
	anchor := geom.Point{X: sc.Radar.Position.X, Y: 3}
	rec, world, err := sys.DeployGhostCalibrated(2, anchor, sc.Radar, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ghost deployed: %d control ticks, path length %.1f m\n",
		len(rec.Entries), world.PathLength())

	// 4. The eavesdropper captures 3 seconds and tracks.
	rng := rand.New(rand.NewSource(42))
	frames := sc.Capture(0, int(3*params.FrameRate), rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	detections := pr.ProcessFrames(frames, sc.Radar)
	tracks := radar.TrackDetections(radar.TrackerConfig{}, detections)

	fmt.Printf("eavesdropper sees %d moving target(s) in an EMPTY home:\n", len(tracks))
	for _, t := range tracks {
		tr := t.Smoothed()
		fmt.Printf("  track %d: %d points near %v (vs ghost error %.2f m)\n",
			t.ID, len(tr), tr.Centroid(), geom.MeanPointwiseError(tr, world))
	}
}
