// Quickstart: deploy an RF-Protect tag, inject one ghost, and watch an
// eavesdropper FMCW radar hallucinate it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func main() {
	concurrent := flag.Bool("concurrent", false,
		"overlap the pipeline stages across goroutines (same tracks, same order)")
	flag.Parse()

	// 1. A home with an eavesdropper radar on the bottom wall and an
	//    RF-Protect tag deployed broadside to it.
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		panic(err)
	}
	sc := sess.Scene

	// 2. An RF-Protect system sharing the session's tag + a trajectory GAN.
	ganCfg := gan.DefaultConfig()
	ganCfg.Hidden = 24 // quickstart-sized generator
	sys := sess.NewSystem(core.Config{
		GAN:        &ganCfg,
		CorpusSize: 600,
		Seed:       1,
	})
	fmt.Println("training the trajectory generator (a few seconds)...")
	sys.TrainGenerator(nil, 80)

	// 3. Inject a ghost: a class-2 (medium range of motion) trajectory
	//    anchored 3 m into the room.
	anchor := geom.Point{X: sc.Radar.Position.X, Y: 3}
	rec, world, err := sys.DeployGhostCalibrated(2, anchor, sc.Radar, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ghost deployed: %d control ticks, path length %.1f m\n",
		len(rec.Entries), world.PathLength())

	// 4. The eavesdropper watches 3 seconds through the streaming pipeline:
	//    each frame is synthesized, processed, and dropped before the next —
	//    memory stays flat no matter how long it listens, and the tracks are
	//    bit-identical to a batch Capture + ProcessFrames + TrackDetections.
	//    With -concurrent, each stage runs in its own goroutine connected by
	//    bounded channels — the output is bit-identical either way.
	nFrames := int(3 * sc.Params.FrameRate)
	rng := rand.New(rand.NewSource(42))
	pr := radar.NewProcessor(radar.DefaultConfig())
	trk := pipeline.NewTrack(radar.TrackerConfig{})
	stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
	p := pipeline.New(sc.Stream(0, nFrames, rng), stages...)
	if *concurrent {
		_, err = p.RunConcurrent(context.Background(), 2)
	} else {
		_, err = p.Run(context.Background())
	}
	if err != nil {
		panic(err)
	}
	tracks := trk.Tracks()

	fmt.Printf("eavesdropper sees %d moving target(s) in an EMPTY home:\n", len(tracks))
	for _, t := range tracks {
		tr := t.Smoothed()
		fmt.Printf("  track %d: %d points near %v (vs ghost error %.2f m)\n",
			t.ID, len(tr), tr.Centroid(), geom.MeanPointwiseError(tr, world))
	}
}
