// Office study: the §9.3 evaluation workflow in miniature — spoof several
// cGAN trajectories in the office environment and report the Fig. 11 error
// statistics, including the effect of cabinet multipath.
//
//	go run ./examples/officestudy
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rfprotect/internal/dsp"
	"rfprotect/internal/experiments"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/scene"
)

func main() {
	sz := experiments.Quick()
	sz.GANSteps = 120
	fmt.Println("training trajectory generator...")
	tr := experiments.TrainedGAN(sz, 1)

	params := fmcw.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	var errs metrics.SpoofErrors
	const nTraj = 6
	fmt.Printf("spoofing %d trajectories in the office...\n", nTraj)
	for i := 0; i < nTraj; i++ {
		room := scene.OfficeRoom()
		env, err := experiments.NewEnv(room, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen := tr.G.Generate(1, i%motion.NumClasses, rng)[0]
		world := experiments.FitGhostTrajectory(gen, env, room, rng)
		m, err := env.MeasureGhost(world, motion.SampleRate, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e := metrics.EvaluateSpoof(m.Measured, m.Requested, env.Scene.Radar)
		d, a, l := e.Medians()
		fmt.Printf("  trajectory %d: %3d matched points, median dist %.1f cm, angle %.1f deg, loc %.1f cm\n",
			i+1, len(m.Measured), d*100, a, l*100)
		errs.Merge(e)
	}
	d, a, l := errs.Medians()
	fmt.Printf("\noverall medians: distance %.1f cm, angle %.1f deg, location %.1f cm\n", d*100, a, l*100)
	fmt.Printf("radar range resolution: %.1f cm\n", params.RangeResolution()*100)
	fmt.Printf("90th percentile location error: %.1f cm\n", dsp.Percentile(errs.Location, 90)*100)
}
