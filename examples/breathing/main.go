// Breathing: spoof human breathing with the tag's phase shifter (§11.4) and
// watch an eavesdropper's vital-sign monitor report a phantom's breaths.
//
//	go run ./examples/breathing
package main

import (
	"fmt"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/geom"
	"rfprotect/internal/privacy"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func main() {
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
	if err != nil {
		panic(err)
	}
	sc, ctl := sess.Scene, sess.Ctl
	params := sc.Params
	tagCfg := sess.Tag.Config()

	// A real sleeper breathing at 14 breaths/min.
	sleeper := geom.Point{X: sc.Radar.Position.X - 3, Y: 4.5}
	h := scene.NewHuman(geom.Trajectory{sleeper}, 1)
	h.Breathing = scene.Breathing{Rate: 14.0 / 60, Amplitude: 0.005}
	sc.Humans = []*scene.Human{h}

	// The tag spoofs two phantom sleepers with different rates.
	ghosts := []struct {
		antenna int
		extra   float64
		rate    float64
	}{
		{1, 2.0, 18.0 / 60},
		{4, 3.5, 11.0 / 60},
	}
	for _, g := range ghosts {
		if _, err := ctl.ProgramBreathing(g.antenna, g.extra, g.rate, 0.005, 30, 0); err != nil {
			panic(err)
		}
	}

	// The eavesdropper monitors 30 seconds and reads everyone's "vitals".
	rng := rand.New(rand.NewSource(1))
	frames := sc.Capture(0, int(30*params.FrameRate), rng)
	ex := radar.BreathingExtractor{}

	report := func(name string, dist float64) {
		_, phase := ex.PhaseSeries(frames, dist)
		rate := radar.EstimateRate(phase, params.FrameRate)
		fmt.Printf("  %-22s %.1f breaths/min\n", name, rate*60)
	}
	fmt.Println("eavesdropper's vital-sign report:")
	report("subject at bed", sc.Radar.DistanceOf(sleeper))
	for i, g := range ghosts {
		d := sc.Radar.DistanceOf(tagCfg.AntennaPosition(g.antenna)) + g.extra
		report(fmt.Sprintf("subject %d (phantom)", i+2), d)
	}
	fmt.Printf("\nonly 1 of 3 breathing signatures is real; a guess is right %.0f%% of the time\n",
		100*privacy.BreathingGuessProbability(1, len(ghosts)))
}
