module rfprotect

go 1.22
