module rfprotect

go 1.22

// No requirements — the module is deliberately dependency-free (DESIGN.md
// "Concurrency model"). In particular, cmd/rfvet and internal/analysis do
// NOT pull in golang.org/x/tools: the narrow go/analysis + analysistest
// surface the invariant suite needs is reimplemented on the standard
// library's go/ast + go/types in internal/analysis, so swapping to the
// real x/tools multichecker later is an import change, not a rewrite.
