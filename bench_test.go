// Package main's bench suite regenerates every table and figure of the
// paper's evaluation as testing.B benchmarks: one bench per experiment, each
// reporting the headline numbers as custom metrics alongside time/op.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// (Each iteration runs a full experiment; -benchtime=1x gives one clean
// pass. The default benchtime also works but repeats experiments.)
package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"rfprotect/internal/dsp"
	"rfprotect/internal/experiments"
	"rfprotect/internal/fmcw"
)

// benchSizes keeps bench iterations tractable while exercising the full
// code path of every experiment; cmd/experiments -run all uses Full().
func benchSizes() experiments.Sizes {
	sz := experiments.Quick()
	sz.TrajPerRoom = 6
	return sz
}

// BenchmarkFig7MutualInformation regenerates the privacy curves of Fig. 7.
func BenchmarkFig7MutualInformation(b *testing.B) {
	var minMI float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7()
		_, minMI = r.MinMI(len(r.Ms) - 1)
	}
	b.ReportMetric(minMI, "min-I(X;Z)-bits")
}

// BenchmarkFig9RadarLocalization regenerates the localization
// microbenchmark of Fig. 9.
func BenchmarkFig9RadarLocalization(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
		med = r.Shapes[0].MedianError
	}
	b.ReportMetric(med*100, "median-err-cm")
}

// BenchmarkFig10RangeAngleProfiles regenerates the human-vs-ghost profile
// comparison of Fig. 10a/b and the single-trajectory spoof of Fig. 10c.
func BenchmarkFig10RangeAngleProfiles(b *testing.B) {
	sz := benchSizes()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(sz, 2)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.GhostPeak / r.HumanPeak
	}
	b.ReportMetric(ratio, "ghost/human-power")
}

// BenchmarkFig11Spoofing regenerates the 2-D spoofing accuracy CDFs of
// Fig. 11a/b/c (home and office).
func BenchmarkFig11Spoofing(b *testing.B) {
	sz := benchSizes()
	var home, office float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(sz, 3)
		if err != nil {
			b.Fatal(err)
		}
		home = r.Envs[0].MedianLocation
		office = r.Envs[1].MedianLocation
	}
	b.ReportMetric(home*100, "home-median-loc-cm")
	b.ReportMetric(office*100, "office-median-loc-cm")
}

// BenchmarkFig12FID regenerates the normalized-FID comparison of Fig. 12
// (right).
func BenchmarkFig12FID(b *testing.B) {
	sz := benchSizes()
	var gan float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(sz, 3)
		gan = r.NormalizedFID["GAN"]
	}
	b.ReportMetric(gan, "gan-normalized-fid")
}

// BenchmarkFig12GANSamples measures trajectory generation throughput
// (Fig. 12 left's sample grids).
func BenchmarkFig12GANSamples(b *testing.B) {
	sz := benchSizes()
	tr := experiments.TrainedGAN(sz, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Sample(10)
	}
}

// BenchmarkTable1UserStudy regenerates the simulated user study of Table 1.
func BenchmarkTable1UserStudy(b *testing.B) {
	sz := benchSizes()
	var p float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(sz, 4)
		p = r.P
	}
	b.ReportMetric(p, "chi2-p-value")
}

// BenchmarkFig13LegitimateSensing regenerates the legitimate-sensing
// demonstration of Fig. 13.
func BenchmarkFig13LegitimateSensing(b *testing.B) {
	var kept float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(5)
		if err != nil {
			b.Fatal(err)
		}
		kept = float64(r.HumanTracksKept)
	}
	b.ReportMetric(kept, "human-tracks-kept")
}

// BenchmarkFig14BreathingSpoof regenerates the breathing-rate spoofing
// comparison of Fig. 14.
func BenchmarkFig14BreathingSpoof(b *testing.B) {
	var ghostRate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(6)
		if err != nil {
			b.Fatal(err)
		}
		ghostRate = r.GhostRate
	}
	b.ReportMetric(ghostRate*60, "ghost-breaths/min")
}

// BenchmarkRunAll exercises the full dispatcher end to end (the cmd path).
func BenchmarkRunAll(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep")
	}
	sz := benchSizes()
	sz.TrajPerRoom = 2
	for i := 0; i < b.N; i++ {
		if err := experiments.Run("all", sz, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineReturns builds the mixed 64-return workload cmd/bench uses, so
// `go test -bench` and the JSON snapshot measure the same thing.
func pipelineReturns() []fmcw.Return {
	rng := rand.New(rand.NewSource(1))
	out := make([]fmcw.Return, 64)
	for i := range out {
		out[i] = fmcw.Return{
			Delay:     2 * (1 + 10*rng.Float64()) / fmcw.C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

// BenchmarkPipelineFrameSynthesis measures beat-signal synthesis — the
// inner loop of every experiment — sequentially and with the full worker
// pool. Outputs are bit-identical; only cost differs.
func BenchmarkPipelineFrameSynthesis(b *testing.B) {
	params := fmcw.DefaultParams()
	returns := pipelineReturns()
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fmcw.SynthesizeWorkers(params, returns, 0, rng, workers)
			}
		})
	}
}

// BenchmarkPipelineRangeFFT measures the cached-plan 512-point range FFT
// and the 64-row batch shape of a Doppler burst.
func BenchmarkPipelineRangeFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	row := make([]complex128, 512)
	for i := range row {
		row[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.Run("single-512", func(b *testing.B) {
		buf := make([]complex128, len(row))
		for i := 0; i < b.N; i++ {
			copy(buf, row)
			dsp.FFTInPlace(buf)
		}
	})
	batch := make([][]complex128, 64)
	for k := range batch {
		r := make([]complex128, 512)
		copy(r, row)
		batch[k] = r
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("batch-64x512-workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dsp.FFTEach(batch, workers)
			}
		})
	}
}

// BenchmarkAblations regenerates the design-choice ablations documented in
// EXPERIMENTS.md (speckle, square-wave harmonics, amplitude control).
func BenchmarkAblations(b *testing.B) {
	var withSpeckle float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(11)
		if err != nil {
			b.Fatal(err)
		}
		withSpeckle = r.LocErrWithSpeckle
	}
	b.ReportMetric(withSpeckle*100, "office-loc-err-cm")
}
