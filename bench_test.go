// Package main's bench suite regenerates every table and figure of the
// paper's evaluation as testing.B benchmarks: one bench per experiment, each
// reporting the headline numbers as custom metrics alongside time/op.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// (Each iteration runs a full experiment; -benchtime=1x gives one clean
// pass. The default benchtime also works but repeats experiments.)
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"rfprotect/internal/core"
	"rfprotect/internal/dsp"
	"rfprotect/internal/experiments"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// benchSizes keeps bench iterations tractable while exercising the full
// code path of every experiment; cmd/experiments -run all uses Full().
func benchSizes() experiments.Sizes {
	sz := experiments.Quick()
	sz.TrajPerRoom = 6
	return sz
}

// BenchmarkFig7MutualInformation regenerates the privacy curves of Fig. 7.
func BenchmarkFig7MutualInformation(b *testing.B) {
	var minMI float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7()
		_, minMI = r.MinMI(len(r.Ms) - 1)
	}
	b.ReportMetric(minMI, "min-I(X;Z)-bits")
}

// BenchmarkFig9RadarLocalization regenerates the localization
// microbenchmark of Fig. 9.
func BenchmarkFig9RadarLocalization(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
		med = r.Shapes[0].MedianError
	}
	b.ReportMetric(med*100, "median-err-cm")
}

// BenchmarkFig10RangeAngleProfiles regenerates the human-vs-ghost profile
// comparison of Fig. 10a/b and the single-trajectory spoof of Fig. 10c.
func BenchmarkFig10RangeAngleProfiles(b *testing.B) {
	sz := benchSizes()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(sz, 2)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.GhostPeak / r.HumanPeak
	}
	b.ReportMetric(ratio, "ghost/human-power")
}

// BenchmarkFig11Spoofing regenerates the 2-D spoofing accuracy CDFs of
// Fig. 11a/b/c (home and office).
func BenchmarkFig11Spoofing(b *testing.B) {
	sz := benchSizes()
	var home, office float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(sz, 3)
		if err != nil {
			b.Fatal(err)
		}
		home = r.Envs[0].MedianLocation
		office = r.Envs[1].MedianLocation
	}
	b.ReportMetric(home*100, "home-median-loc-cm")
	b.ReportMetric(office*100, "office-median-loc-cm")
}

// BenchmarkFig12FID regenerates the normalized-FID comparison of Fig. 12
// (right).
func BenchmarkFig12FID(b *testing.B) {
	sz := benchSizes()
	var gan float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(sz, 3)
		gan = r.NormalizedFID["GAN"]
	}
	b.ReportMetric(gan, "gan-normalized-fid")
}

// BenchmarkFig12GANSamples measures trajectory generation throughput
// (Fig. 12 left's sample grids).
func BenchmarkFig12GANSamples(b *testing.B) {
	sz := benchSizes()
	tr := experiments.TrainedGAN(sz, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Sample(10)
	}
}

// BenchmarkTable1UserStudy regenerates the simulated user study of Table 1.
func BenchmarkTable1UserStudy(b *testing.B) {
	sz := benchSizes()
	var p float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(sz, 4)
		p = r.P
	}
	b.ReportMetric(p, "chi2-p-value")
}

// BenchmarkFig13LegitimateSensing regenerates the legitimate-sensing
// demonstration of Fig. 13.
func BenchmarkFig13LegitimateSensing(b *testing.B) {
	var kept float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(5)
		if err != nil {
			b.Fatal(err)
		}
		kept = float64(r.HumanTracksKept)
	}
	b.ReportMetric(kept, "human-tracks-kept")
}

// BenchmarkFig14BreathingSpoof regenerates the breathing-rate spoofing
// comparison of Fig. 14.
func BenchmarkFig14BreathingSpoof(b *testing.B) {
	var ghostRate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(6)
		if err != nil {
			b.Fatal(err)
		}
		ghostRate = r.GhostRate
	}
	b.ReportMetric(ghostRate*60, "ghost-breaths/min")
}

// BenchmarkRunAll exercises the full dispatcher end to end (the cmd path).
func BenchmarkRunAll(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep")
	}
	sz := benchSizes()
	sz.TrajPerRoom = 2
	for i := 0; i < b.N; i++ {
		if err := experiments.Run("all", sz, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineReturns builds the mixed 64-return workload cmd/bench uses, so
// `go test -bench` and the JSON snapshot measure the same thing.
func pipelineReturns() []fmcw.Return {
	rng := rand.New(rand.NewSource(1))
	out := make([]fmcw.Return, 64)
	for i := range out {
		out[i] = fmcw.Return{
			Delay:     2 * (1 + 10*rng.Float64()) / fmcw.C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

// BenchmarkPipelineFrameSynthesis measures beat-signal synthesis — the
// inner loop of every experiment — sequentially and with the full worker
// pool. Outputs are bit-identical; only cost differs.
func BenchmarkPipelineFrameSynthesis(b *testing.B) {
	params := fmcw.DefaultParams()
	returns := pipelineReturns()
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fmcw.SynthesizeWorkers(params, returns, 0, rng, workers)
			}
		})
	}
}

// BenchmarkPipelineRangeFFT measures the cached-plan 512-point range FFT
// and the 64-row batch shape of a Doppler burst.
func BenchmarkPipelineRangeFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	row := make([]complex128, 512)
	for i := range row {
		row[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.Run("single-512", func(b *testing.B) {
		buf := make([]complex128, len(row))
		for i := 0; i < b.N; i++ {
			copy(buf, row)
			dsp.FFTInPlace(buf)
		}
	})
	batch := make([][]complex128, 64)
	for k := range batch {
		r := make([]complex128, 512)
		copy(r, row)
		batch[k] = r
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("batch-64x512-workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dsp.FFTEach(batch, workers)
			}
		})
	}
}

// BenchmarkMagnitude measures the magnitude kernel both ways — the
// historical cmplx.Abs formulation and the math.Hypot one dsp.Magnitude
// now uses — over the radar's 512-bin spectrum shape. Same destination
// buffer, zero allocations either way; the delta is pure per-element cost.
func BenchmarkMagnitude(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]float64, len(x))
	b.Run("hypot-512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dsp.MagnitudeTo(dst, x)
		}
	})
	b.Run("cmplx-abs-512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k, v := range x {
				dst[k] = cmplx.Abs(v)
			}
		}
	})
}

// streamingSession builds the capture-and-track workload cmd/bench's
// streaming section uses: a home with a programmed ghost.
func streamingSession(b *testing.B) *core.Session {
	b.Helper()
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		b.Fatal(err)
	}
	cx := sess.Scene.Radar.Position.X
	ghost := make(geom.Trajectory, 40)
	for i := range ghost {
		f := float64(i) / float64(len(ghost)-1)
		ghost[i] = geom.Point{X: cx + 0.3 + f, Y: 2.7 + 1.5*f}
	}
	if _, err := sess.Ctl.ProgramForRadar(ghost, sess.Scene.Radar, sess.Scene.Params.FrameRate, 0); err != nil {
		b.Fatal(err)
	}
	return sess
}

// BenchmarkStreamingCaptureTrack measures the streaming pipeline end to end
// — synthesize, background-subtract, profile, detect, track, one frame in
// flight — against the batch path over the same 32-frame capture. Outputs
// are bit-identical (see internal/pipeline); only cost and footprint differ.
func BenchmarkStreamingCaptureTrack(b *testing.B) {
	const nFrames = 32
	sess := streamingSession(b)
	sc := sess.Scene
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := radar.NewProcessor(radar.DefaultConfig())
			trk := pipeline.NewTrack(radar.TrackerConfig{})
			stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
			rng := rand.New(rand.NewSource(1))
			if _, err := pipeline.New(sc.Stream(0, nFrames, rng), stages...).Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The pooled variant of the same chain: frames come from a FramePool,
	// profiles from a ProfilePool, and the pipeline recycles both after an
	// item's last stage. Detections and tracks are bit-identical (see
	// internal/pipeline's pooled equivalence tests); -benchmem shows the
	// allocs/op drop.
	b.Run("streaming-pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := radar.NewProcessor(radar.DefaultConfig())
			pools := pipeline.NewPools(sc.Params)
			trk := pipeline.NewTrack(radar.TrackerConfig{})
			stages := append(pipeline.FrontEndStagesPooled(pr, sc.Radar, pools), trk)
			rng := rand.New(rand.NewSource(1))
			src := sc.Stream(0, nFrames, rng).UsePool(pools.Frames)
			if _, err := pipeline.New(src, stages...).UsePools(pools).Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := radar.NewProcessor(radar.DefaultConfig())
			rng := rand.New(rand.NewSource(1))
			frames := sc.Capture(0, nFrames, rng)
			radar.TrackDetections(radar.TrackerConfig{}, pr.ProcessFrames(frames, sc.Radar))
		}
	})
	// Stage-overlapped scheduler over the same chain: each stage in its own
	// goroutine, bounded channels of the given depth, output bit-identical
	// to the sequential run.
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("concurrent-depth-%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := radar.NewProcessor(radar.DefaultConfig())
				trk := pipeline.NewTrack(radar.TrackerConfig{})
				stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
				rng := rand.New(rand.NewSource(1))
				p := pipeline.New(sc.Stream(0, nFrames, rng), stages...)
				if _, err := p.RunConcurrent(context.Background(), depth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDopplerStage measures the steady-state per-frame cost of the
// sliding-window range–Doppler recompute: the 8-frame window is pre-filled,
// so every iteration is one ring-buffer push plus a full slow-time FFT over
// all range bins.
func BenchmarkDopplerStage(b *testing.B) {
	sess := streamingSession(b)
	sc := sess.Scene
	rng := rand.New(rand.NewSource(1))
	frame := sc.FrameAt(0, rng)
	dop := pipeline.NewDoppler(radar.NewProcessor(radar.DefaultConfig()), 8, 0)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := dop.Process(ctx, &pipeline.Item{Index: i, Frame: frame}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dop.Process(ctx, &pipeline.Item{Index: 8 + i, Frame: frame}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingCancellation measures how fast a canceled unbounded
// capture unwinds — the cost of the pipeline's cooperative-cancellation
// checks, not of the frames themselves.
func BenchmarkStreamingCancellation(b *testing.B) {
	sess := streamingSession(b)
	sc := sess.Scene
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pr := radar.NewProcessor(radar.DefaultConfig())
		rng := rand.New(rand.NewSource(1))
		p := pipeline.New(sc.Stream(0, -1, rng), pipeline.FrontEndStages(pr, sc.Radar)...)
		if _, err := p.Run(ctx); !errors.Is(err, context.Canceled) {
			b.Fatalf("Run = %v, want context.Canceled", err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablations documented in
// EXPERIMENTS.md (speckle, square-wave harmonics, amplitude control).
func BenchmarkAblations(b *testing.B) {
	var withSpeckle float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(11)
		if err != nil {
			b.Fatal(err)
		}
		withSpeckle = r.LocErrWithSpeckle
	}
	b.ReportMetric(withSpeckle*100, "office-loc-err-cm")
}
