// Command rfprotect runs an end-to-end demonstration: a home with a real
// occupant, an RF-Protect tag injecting a GAN-generated ghost, an
// eavesdropper radar tracking the room, and a legitimate sensor removing the
// disclosed ghost.
//
//	rfprotect -duration 5 -ghosts 2 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rfprotect/internal/core"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func main() {
	duration := flag.Float64("duration", 5, "capture duration in seconds")
	ghosts := flag.Int("ghosts", 1, "number of ghosts to inject")
	ganSteps := flag.Int("gansteps", 120, "cGAN training steps (ignored with -model)")
	model := flag.String("model", "", "pre-trained cGAN weights (from gantrain)")
	seed := flag.Int64("seed", 1, "random seed")
	concurrent := flag.Bool("concurrent", false,
		"run the capture through the stage-overlapped concurrent scheduler (bit-identical output)")
	flag.Parse()

	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		fatal(err)
	}
	sc := sess.Scene
	params := sc.Params
	rng := rand.New(rand.NewSource(*seed))

	// RF-Protect system sharing the session's tag (deployed broadside to the
	// radar, just inside the wall).
	ganCfg := gan.DefaultConfig()
	sys := sess.NewSystem(core.Config{GAN: &ganCfg, Seed: *seed})
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		err = sys.LoadGenerator(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded cGAN weights from %s\n", *model)
	} else {
		fmt.Printf("training cGAN for %d steps...\n", *ganSteps)
		sys.TrainGenerator(nil, *ganSteps)
	}

	// A real occupant ambles through the home.
	walker := motion.NewGenerator(motion.DefaultConfig(), *seed+10)
	humanTraj := walker.Trace().Translate(geom.Point{X: 4, Y: 4})
	for i, p := range humanTraj {
		humanTraj[i] = sc.Room.Clamp(p, 0.5)
	}
	sc.Humans = []*scene.Human{scene.NewHuman(humanTraj, motion.SampleRate)}
	fmt.Printf("real occupant: %d-point trajectory around %v\n", len(humanTraj), humanTraj.Centroid())

	// Inject ghosts.
	for g := 0; g < *ghosts; g++ {
		class := 1 + g%3
		anchor := geom.Point{X: sc.Radar.Position.X - 0.6 + 1.2*rng.Float64(), Y: 2.5 + 1.5*rng.Float64()}
		rec, world, err := sys.DeployGhostCalibrated(class, anchor, sc.Radar, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ghost %d: class %d, %d control ticks, anchored at %v\n",
			g+1, class, len(rec.Entries), world.Centroid())
	}

	// Eavesdropper captures and tracks through the streaming pipeline: one
	// frame in flight end to end, so memory stays flat for any -duration,
	// and ctrl-C-style cancellation would stop the capture cleanly.
	n := int(*duration * params.FrameRate)
	fmt.Printf("capturing %d frames (%.1f s at %.0f Hz)...\n", n, *duration, params.FrameRate)
	pr := radar.NewProcessor(radar.DefaultConfig())
	trk := pipeline.NewTrack(radar.TrackerConfig{})
	stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
	p := pipeline.New(sc.Stream(0, n, rng), stages...)
	if *concurrent {
		// Opt-in stage overlap: each stage in its own goroutine, delivery
		// order and tracks bit-identical to the sequential run.
		_, err = p.RunConcurrent(context.Background(), 2)
	} else {
		_, err = p.Run(context.Background())
	}
	if err != nil {
		fatal(err)
	}
	tracks := radar.FilterHumanTracks(trk.Tracks(), params.FrameRate)

	fmt.Printf("\neavesdropper view: %d human-like tracks\n", len(tracks))
	for _, t := range tracks {
		tr := t.Smoothed()
		fmt.Printf("  track %d: %3d points, centroid %v, span %.1f m\n",
			t.ID, len(tr), tr.Centroid(), tr.RangeOfMotion())
	}

	legit := core.NewLegitSensor(sys.Tag().Config(), sc.Radar)
	humans, ghostTracks := legit.Filter(tracks, sys.Disclosures())
	fmt.Printf("\nlegitimate sensor (with disclosure): %d real track(s), %d ghost track(s) removed\n",
		len(humans), len(ghostTracks))
	for _, t := range humans {
		tr := t.Smoothed()
		err := geom.MeanPointwiseError(tr, humanTraj)
		fmt.Printf("  kept track %d: error vs real occupant %.2f m\n", t.ID, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfprotect:", err)
	os.Exit(1)
}
