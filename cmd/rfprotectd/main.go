// Command rfprotectd is the RF-Protect daemon: a long-running server
// hosting many concurrent simulation/processing sessions ("rooms") behind
// the sharded manager in internal/service, exposed over an HTTP/streaming
// API. See API.md for the endpoint reference and DESIGN.md ("Service
// architecture") for the invariants.
//
// Lifecycle: rfprotectd listens until SIGTERM/SIGINT, then drains — new
// rooms and frames are refused, every accepted frame finishes all stages,
// all runner goroutines are joined — and exits 0. If the drain budget
// (-drain-timeout) expires first, stragglers are hard-cancelled and the
// exit code is 1.
//
//	rfprotectd -addr 127.0.0.1:8347 -shards 8 -drain-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfprotect/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its environment injected — args, output streams, and an
// optional started callback reporting the bound address — so the daemon
// test can drive a full start → serve → SIGTERM → drain lifecycle
// in-process.
func run(args []string, stdout, stderr io.Writer, started func(addr string)) int {
	fs := flag.NewFlagSet("rfprotectd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks a free port)")
	shards := fs.Int("shards", 8, "room-table shards")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The manager's root is NOT the signal context: a signal must trigger
	// the orderly drain below, not an instant hard-cancel of every room.
	root := context.Background()
	sigCtx, stopSignals := signal.NotifyContext(root, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	m := service.NewManager(root, *shards)
	srv := &http.Server{Handler: m.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rfprotectd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "rfprotectd listening on http://%s (%d shards)\n", ln.Addr(), *shards)
	if started != nil {
		started(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ln)
	}()

	select {
	case <-sigCtx.Done():
	case err := <-serveErr:
		fmt.Fprintf(stderr, "rfprotectd: serve: %v\n", err)
		return 1
	}
	stopSignals()
	fmt.Fprintf(stdout, "rfprotectd: signal received, draining (budget %s)\n", *drainTimeout)

	code := 0
	dctx, dcancel := context.WithTimeout(root, *drainTimeout)
	defer dcancel()
	if err := m.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "rfprotectd: drain incomplete, stragglers hard-cancelled: %v\n", err)
		code = 1
	}
	sctx, scancel := context.WithTimeout(root, 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "rfprotectd: shutdown: %v\n", err)
		code = 1
	}
	<-serveErr // http.ErrServerClosed after Shutdown
	fmt.Fprintln(stdout, "rfprotectd: drained, bye")
	return code
}
