package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rfprotect/internal/fmcw"
)

// syncBuffer is a concurrency-safe bytes.Buffer: run writes from the daemon
// goroutine, the test reads after exit.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonSIGTERMDrain drives the full daemon lifecycle in-process:
// start, create a synthetic room and an ingest room over HTTP, stream the
// synthetic room to completion, push frames into the ingest room, send the
// process SIGTERM, and assert a clean drain — exit code 0, every accepted
// frame processed, and no leaked goroutines.
func TestDaemonSIGTERMDrain(t *testing.T) {
	// Prime os/signal before the baseline: its internal delivery goroutine
	// starts on first Notify and deliberately never exits, so it must not
	// count as a daemon leak.
	prime := make(chan os.Signal, 1)
	signal.Notify(prime, syscall.SIGHUP)
	signal.Stop(prime)
	baseline := runtime.NumGoroutine()
	var out, errOut syncBuffer
	addrCh := make(chan string, 1)
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run(
			[]string{"-addr", "127.0.0.1:0", "-shards", "4", "-drain-timeout", "30s"},
			&out, &errOut,
			func(addr string) { addrCh <- addr },
		)
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon did not start; stderr:\n%s", errOut.String())
	}

	// Synthetic room: runs to completion on its own.
	resp, err := http.Post(base+"/v1/rooms", "application/json",
		strings.NewReader(`{"id":"synth","frames":16,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create synth: status %d", resp.StatusCode)
	}
	// Drain its stream to the final event so the room is done pre-SIGTERM.
	resp, err = http.Get(base + "/v1/rooms/synth/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawFinal := false
	for sc.Scan() {
		var ev struct {
			Final bool   `json:"final"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Final {
			if ev.Error != "" {
				t.Fatalf("synth room failed: %s", ev.Error)
			}
			sawFinal = true
			break
		}
	}
	resp.Body.Close()
	if !sawFinal {
		t.Fatal("synth stream ended without a final event")
	}

	// Ingest room with queued frames: these must survive the drain.
	resp, err = http.Post(base+"/v1/rooms", "application/json",
		strings.NewReader(`{"id":"live","queue_depth":32}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create live: status %d", resp.StatusCode)
	}
	shape := fmcw.NewFrame(fmcw.DefaultParams(), 0)
	data := make([][][2]float64, len(shape.Data))
	for k := range data {
		data[k] = make([][2]float64, len(shape.Data[k]))
	}
	const pushed = 8
	var batch bytes.Buffer
	enc := json.NewEncoder(&batch)
	for i := 0; i < pushed; i++ {
		if err := enc.Encode(map[string]any{"time": float64(i) * 0.05, "data": data}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Post(base+"/v1/rooms/live/frames", "application/x-ndjson", &batch)
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Ingested int `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Ingested != pushed {
		t.Fatalf("ingest: status %d, ingested %d (want 200/%d)", resp.StatusCode, ing.Ingested, pushed)
	}

	// SIGTERM → drain → clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-exitCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errOut.String())
	}
	stdout := out.String()
	for _, want := range []string{"signal received, draining", "drained, bye"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}

	// No goroutine may outlive the daemon.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after daemon exit: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
