// Command gantrain trains the trajectory cGAN on a synthetic human-motion
// corpus and saves the weights for later use (cmd/rfprotect, examples).
//
//	gantrain -steps 400 -corpus 4000 -o model.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"rfprotect/internal/gan"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
)

func main() {
	steps := flag.Int("steps", 400, "training steps")
	corpus := flag.Int("corpus", 4000, "synthetic corpus size")
	hidden := flag.Int("hidden", 0, "LSTM hidden size override (0 = default; paper uses 512)")
	out := flag.String("o", "model.gob", "output weights file")
	seed := flag.Int64("seed", 1, "random seed")
	paper := flag.Bool("paper", false, "use the paper's full-size hyperparameters (slow on CPU)")
	flag.Parse()

	cfg := gan.DefaultConfig()
	if *paper {
		cfg = gan.PaperConfig()
	}
	if *hidden > 0 {
		cfg.Hidden = *hidden
	}
	cfg.Seed = *seed

	fmt.Printf("generating %d-trace corpus...\n", *corpus)
	ds := motion.Generate(*corpus, *seed+1)
	tr := gan.NewTrainer(cfg, ds)
	fmt.Printf("training cGAN (hidden %d, batch %d) for %d steps...\n", cfg.Hidden, cfg.Batch, *steps)
	tr.Train(*steps, 20, os.Stdout)

	// Quick quality report: normalized FID of samples vs a held-out split.
	a, b := ds.Split()
	samples := tr.Sample(min(400, *corpus/4))
	base := metrics.TrajectoryFID(a.Traces, b.Traces)
	fid := metrics.TrajectoryFID(samples, b.Traces) / base
	fmt.Printf("normalized FID of generated trajectories: %.3f (1.0 = real)\n", fid)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("weights saved to %s\n", *out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gantrain:", err)
	os.Exit(1)
}
