// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all            # every experiment at paper scale
//	experiments -run fig11 -quick   # one experiment at test scale
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"rfprotect/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (fig7, fig9, fig10, fig11, fig12, fig13, fig14, table1, all)")
	quick := flag.Bool("quick", false, "use the reduced test-scale configuration")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	sz := experiments.Full()
	if *quick {
		sz = experiments.Quick()
	}
	if err := experiments.Run(*run, sz, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
