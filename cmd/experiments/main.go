// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all            # every experiment at paper scale
//	experiments -run fig11 -quick   # one experiment at test scale
//	experiments -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"rfprotect/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (fig7, fig9, fig10, fig11, fig12, fig13, fig14, table1, armsrace, all)")
	quick := flag.Bool("quick", false, "use the reduced test-scale configuration")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	sz := experiments.Full()
	if *quick {
		sz = experiments.Quick()
	}
	// Interrupt (^C) cancels the sweep cooperatively: captures stop, workers
	// join, and the command exits instead of grinding through the remaining
	// paper-scale experiments.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := experiments.RunCtx(ctx, *run, sz, *seed, os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
