module allowfixture

go 1.22
