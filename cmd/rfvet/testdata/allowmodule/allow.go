// Package allowfixture exercises the -require-justification gate: its one
// violation is suppressed by an //rfvet:allow comment that names the
// analyzer but records no "-- justification" clause. A plain run is clean;
// a -require-justification run reports the naked allow.
package allowfixture

import "time"

// Stamp reads the wall clock behind an unjustified exemption.
func Stamp() time.Time {
	return time.Now() //rfvet:allow wallclock
}
