// Package bad is the known-bad smoke fixture for cmd/rfvet: a library
// package that violates each of the four invariants exactly once, so the
// smoke test can assert that every analyzer fires — and fires once.
package bad

import (
	"context"
	"math/rand"
	"time"
)

// Process trips seedsplit (ad-hoc seed arithmetic), goroleak (unjoined
// goroutine), ctxflow (synthesized root in library code), and wallclock
// (clock read) — one diagnostic each.
func Process(seed int64) time.Time {
	go fill(rand.New(rand.NewSource(seed + 1)))
	_ = work(context.Background())
	return time.Now()
}

// fill burns a draw so the goroutine has a body.
func fill(r *rand.Rand) { r.Int63() }

// work is a context-accepting leaf.
func work(ctx context.Context) error { return ctx.Err() }
