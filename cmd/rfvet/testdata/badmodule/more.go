package bad

import (
	"math"
	"sync"
)

// This file extends the known-bad fixture with one violation for each of
// the PR 9 analyzers — poolcheck, lockorder, saturate — exactly one each,
// and nothing that would re-trip the original four.

// Buf and BufPool give poolcheck a first-party free list to track.
type Buf struct{ data []float64 }

type BufPool struct{ free []*Buf }

func (p *BufPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{data: make([]float64, 4)}
}

func (p *BufPool) Put(b *Buf) { p.free = append(p.free, b) }

// DropBuffer trips poolcheck: the checkout never reaches a Put and is
// never handed off.
func DropBuffer(p *BufPool) {
	b := p.Get()
	b.data[0] = 1
}

// locks carries a two-level rank hierarchy for lockorder.
type locks struct {
	//rfvet:lockrank 10
	low sync.Mutex

	//rfvet:lockrank 20
	high sync.Mutex
}

// Invert trips lockorder: the low-rank lock is taken under the high-rank
// one.
func (l *locks) Invert() {
	l.high.Lock()
	l.low.Lock()
	l.low.Unlock()
	l.high.Unlock()
}

// finiteOrHuge opts the package into the saturate contract.
func finiteOrHuge(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 0) {
		return math.Copysign(math.MaxFloat64, v)
	}
	return v
}

// Score trips saturate: an exported float64 result that skips
// finiteOrHuge.
func Score(a, b float64) float64 {
	return a * b
}
