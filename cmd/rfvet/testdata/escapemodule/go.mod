module escapefixture

go 1.22
