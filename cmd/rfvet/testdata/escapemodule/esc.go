// Package esc is the negative-test fixture for the allocfree pass: one
// annotated function with a deliberate heap escape (the compiler must
// flag it), one annotated function that is genuinely allocation-free, and
// one unannotated function whose escapes are out of scope.
package esc

// Boxed deliberately escapes a local: returning the address of a stack
// variable moves it to the heap.
//
//rfvet:allocfree
func Boxed(n int) *int {
	v := n
	return &v
}

// Clean is annotated and allocation-free: everything stays on the stack.
//
//rfvet:allocfree
func Clean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Unannotated escapes freely without tripping the pass.
func Unannotated(n int) *int {
	v := n
	return &v
}
