package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rfprotect/internal/analysis"
)

// TestSmokeKnownBadModule runs the full suite over the known-bad fixture
// module through the same entry point main wraps, and asserts each
// analyzer fires exactly once.
func TestSmokeKnownBadModule(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "badmodule"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Vet(dir, analysis.All(), []string{"./..."})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	for _, a := range analysis.All() {
		if counts[a.Name] != 1 {
			t.Errorf("analyzer %s fired %d times on the bad module, want exactly 1", a.Name, counts[a.Name])
		}
	}
	if len(diags) != len(analysis.All()) {
		t.Errorf("got %d diagnostics, want %d:\n%v", len(diags), len(analysis.All()), diags)
	}
}

// TestSmokeBinary builds and runs the actual rfvet binary over the fixture
// module: the multichecker must exit 1 and report each analyzer once.
func TestSmokeBinary(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	cmd := exec.Command(goTool, "run", ".", filepath.Join("testdata", "badmodule")+"/...")
	out, err := cmd.CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("go run . over bad module: err = %v, want exit status 1; output:\n%s", err, out)
	}
	for _, a := range analysis.All() {
		tag := fmt.Sprintf("[%s]", a.Name)
		if n := strings.Count(string(out), tag); n != 1 {
			t.Errorf("output mentions %s %d times, want exactly 1; output:\n%s", tag, n, out)
		}
	}
}

var rfvetBinary struct {
	once sync.Once
	path string
	err  error
}

// runRfvet executes a compiled rfvet binary (built once per test run; `go
// run` cannot be used because it flattens every nonzero child exit to 1)
// and returns its exit code and combined output.
func runRfvet(t *testing.T, args ...string) (int, string) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	rfvetBinary.once.Do(func() {
		dir, err := os.MkdirTemp("", "rfvet-test-*")
		if err != nil {
			rfvetBinary.err = err
			return
		}
		rfvetBinary.path = filepath.Join(dir, "rfvet")
		cmd := exec.Command(goTool, "build", "-o", rfvetBinary.path, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			rfvetBinary.err = fmt.Errorf("build rfvet: %v\n%s", err, out)
		}
	})
	if rfvetBinary.err != nil {
		t.Fatal(rfvetBinary.err)
	}
	cmd := exec.Command(rfvetBinary.path, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("rfvet %v: %v\n%s", args, err, out)
	}
	return exitErr.ExitCode(), string(out)
}

// TestExitCodes pins the documented contract: 0 clean, 1 diagnostics,
// 2 operational error.
func TestExitCodes(t *testing.T) {
	if code, out := runRfvet(t, filepath.Join("testdata", "allowmodule")+"/..."); code != 0 {
		t.Errorf("clean module: exit %d, want 0; output:\n%s", code, out)
	}
	if code, out := runRfvet(t, filepath.Join("testdata", "badmodule")+"/..."); code != 1 {
		t.Errorf("bad module: exit %d, want 1; output:\n%s", code, out)
	}
	if code, out := runRfvet(t, filepath.Join("testdata", "does-not-exist")+"/..."); code != 2 {
		t.Errorf("missing dir: exit %d, want 2; output:\n%s", code, out)
	}
}

// TestRequireJustification asserts that the allowmodule fixture — clean by
// default — fails once -require-justification demands a "-- reason" on its
// naked allow.
func TestRequireJustification(t *testing.T) {
	code, out := runRfvet(t, "-require-justification", filepath.Join("testdata", "allowmodule")+"/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if n := strings.Count(out, "[allow]"); n != 1 {
		t.Errorf("output mentions [allow] %d times, want exactly 1; output:\n%s", n, out)
	}
	if !strings.Contains(out, "justification") {
		t.Errorf("diagnostic does not explain the missing justification:\n%s", out)
	}
}

// TestAllocFreeEscapeFixture runs the escape-analysis pass directly over
// the fixture module: the deliberate escape in Boxed must be the one and
// only diagnostic — Clean is annotated but allocation-free, Unannotated
// escapes out of scope.
func TestAllocFreeEscapeFixture(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "escapemodule"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.AllocFree(analysis.Options{}, dir, []string{"./..."})
	if err != nil {
		t.Fatalf("allocfree: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1:\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != analysis.AllocFreeAnalyzerName {
		t.Errorf("analyzer = %q, want %q", d.Analyzer, analysis.AllocFreeAnalyzerName)
	}
	if !strings.Contains(d.Message, "Boxed") {
		t.Errorf("diagnostic does not name the annotated function: %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "esc.go" {
		t.Errorf("diagnostic in %s, want esc.go", d.Pos.Filename)
	}
}

// TestAllocFreeBinary drives the same check through the -allocfree flag.
func TestAllocFreeBinary(t *testing.T) {
	code, out := runRfvet(t, "-allocfree", filepath.Join("testdata", "escapemodule")+"/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if n := strings.Count(out, "[allocfree]"); n != 1 {
		t.Errorf("output mentions [allocfree] %d times, want exactly 1; output:\n%s", n, out)
	}
}

// TestJSONOutput checks the -json wire format over the bad module: one
// object per line, every analyzer present, and the allowmodule's
// suppressed diagnostic carried with its allowedBy trail.
func TestJSONOutput(t *testing.T) {
	code, out := runRfvet(t, "-json", filepath.Join("testdata", "badmodule")+"/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	type diag struct {
		Analyzer  string `json:"analyzer"`
		File      string `json:"file"`
		Line      int    `json:"line"`
		Message   string `json:"message"`
		AllowedBy string `json:"allowedBy"`
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the trailing "rfvet: N violation(s)" stderr line
		}
		var d diag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
		counts[d.Analyzer]++
	}
	for _, a := range analysis.All() {
		if counts[a.Name] != 1 {
			t.Errorf("JSON output has %d %s diagnostics, want 1", counts[a.Name], a.Name)
		}
	}

	// The allowmodule run is clean (exit 0) but -json still surfaces the
	// suppressed wallclock hit with its allow position.
	code, out = runRfvet(t, "-json", filepath.Join("testdata", "allowmodule")+"/...")
	if code != 0 {
		t.Fatalf("allowmodule with -json: exit %d, want 0; output:\n%s", code, out)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var d diag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.Analyzer == "wallclock" && d.AllowedBy != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("suppressed wallclock diagnostic with allowedBy not in -json output:\n%s", out)
	}
}
