package main

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rfprotect/internal/analysis"
)

// TestSmokeKnownBadModule runs the full suite over the known-bad fixture
// module through the same entry point main wraps, and asserts each
// analyzer fires exactly once.
func TestSmokeKnownBadModule(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "badmodule"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Vet(dir, analysis.All(), []string{"./..."})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	for _, a := range analysis.All() {
		if counts[a.Name] != 1 {
			t.Errorf("analyzer %s fired %d times on the bad module, want exactly 1", a.Name, counts[a.Name])
		}
	}
	if len(diags) != len(analysis.All()) {
		t.Errorf("got %d diagnostics, want %d:\n%v", len(diags), len(analysis.All()), diags)
	}
}

// TestSmokeBinary builds and runs the actual rfvet binary over the fixture
// module: the multichecker must exit 1 and report each analyzer once.
func TestSmokeBinary(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	cmd := exec.Command(goTool, "run", ".", filepath.Join("testdata", "badmodule")+"/...")
	out, err := cmd.CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("go run . over bad module: err = %v, want exit status 1; output:\n%s", err, out)
	}
	for _, a := range analysis.All() {
		tag := fmt.Sprintf("[%s]", a.Name)
		if n := strings.Count(string(out), tag); n != 1 {
			t.Errorf("output mentions %s %d times, want exactly 1; output:\n%s", tag, n, out)
		}
	}
}
