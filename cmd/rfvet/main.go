// Command rfvet is the repo's invariant multichecker: it runs the four
// custom analyzers of internal/analysis — seedsplit, ctxflow, goroleak,
// wallclock — over the given package patterns and exits non-zero if any
// diagnostic survives the //rfvet:allow escape hatches. `make lint` and CI
// run it over ./... so every violation of the determinism, context-flow,
// and goroutine-hygiene contracts fails the build.
//
// Usage:
//
//	rfvet [-seedsplit=false] [-ctxflow=false] [-goroleak=false] [-wallclock=false] [patterns]
//
// Patterns default to ./... and follow the go tool's shape: ./... for the
// whole module, dir/... for a subtree, or a single package directory.
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"

	"rfprotect/internal/analysis"
)

func main() {
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	var run []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Vet(cwd, run, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rfvet: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
