// Command rfvet is the repo's invariant multichecker: it runs the seven
// AST analyzers of internal/analysis — seedsplit, ctxflow, goroleak,
// wallclock, poolcheck, lockorder, saturate — over the given package
// patterns, optionally adds the allocfree escape-analysis pass, and exits
// non-zero if any diagnostic survives the //rfvet:allow escape hatches.
// `make lint` and CI run it over ./... so every violation of the
// determinism, context-flow, goroutine-hygiene, buffer-ownership,
// lock-order, and saturation contracts fails the build.
//
// Usage:
//
//	rfvet [-seedsplit=false ... -saturate=false] [-allocfree]
//	      [-require-justification] [-json] [patterns]
//
// Patterns default to ./... and follow the go tool's shape: ./... for the
// whole module, dir/... for a subtree, or a single package directory.
//
//   - -allocfree additionally runs `go build -gcflags=-m` and fails on
//     heap escapes inside //rfvet:allocfree-annotated functions.
//   - -require-justification fails any //rfvet:allow comment missing its
//     "-- justification" clause.
//   - -json emits one JSON object per line (analyzer, pos, message,
//     allowedBy) including suppressed diagnostics, for the CI audit
//     artifact; the exit code still reflects only live diagnostics.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rfprotect/internal/analysis"
)

// jsonDiag is the -json wire shape: one object per line, stable field
// names so CI artifacts diff cleanly across PRs.
type jsonDiag struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Message   string `json:"message"`
	AllowedBy string `json:"allowedBy,omitempty"`
}

func main() {
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	allocfree := flag.Bool("allocfree", false,
		"also run the go build -gcflags=-m escape check over //rfvet:allocfree functions")
	requireJust := flag.Bool("require-justification", false,
		"fail //rfvet:allow comments that lack a -- justification clause")
	jsonOut := flag.Bool("json", false,
		"emit diagnostics as JSON lines (including allowed ones) instead of text")
	flag.Parse()

	var run []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	opts := analysis.Options{
		RequireJustification: *requireJust,
		IncludeAllowed:       *jsonOut,
	}
	diags, err := analysis.VetWith(opts, cwd, run, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	if *allocfree {
		extra, err := analysis.AllocFree(opts, cwd, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfvet:", err)
			os.Exit(2)
		}
		diags = append(diags, extra...)
	}

	live := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !d.Allowed {
			live++
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				Analyzer:  d.Analyzer,
				File:      d.Pos.Filename,
				Line:      d.Pos.Line,
				Col:       d.Pos.Column,
				Message:   d.Message,
				AllowedBy: d.AllowedBy,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "rfvet:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "rfvet: %d violation(s)\n", live)
		os.Exit(1)
	}
}
