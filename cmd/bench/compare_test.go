package main

import (
	"strings"
	"testing"
)

// snap builds a minimal schema-2 snapshot for exercising the gate. Every
// gated speedup is present at its floor so the floor check stays quiet in
// tests that exercise the other gates.
func snap(results []Result, streams []StreamResult) *Snapshot {
	speedups := make(map[string]float64, len(speedupFloors))
	for name, floor := range speedupFloors {
		speedups[name] = floor
	}
	return &Snapshot{Schema: snapshotSchema, Results: results, Streaming: streams, Speedups: speedups}
}

func TestCompareSnapshotsPassesWithinTolerance(t *testing.T) {
	base := snap(
		[]Result{
			{Name: "a", Workers: 1, NsPerOp: 1000, AllocsPerOp: 0, AllocsExact: true},
			{Name: "b", Workers: 4, NsPerOp: 500, AllocsPerOp: 12.3},
		},
		[]StreamResult{{Name: "s", Frames: 64, NsPerFrame: 1e6, AllocsPerFrame: 40}},
	)
	run := snap(
		[]Result{
			// Faster, still zero allocs: fine.
			{Name: "a", Workers: 1, NsPerOp: 900, AllocsPerOp: 0.004, AllocsExact: true},
			// 3.9x slower and more allocs, but neither gated (ratio 4, not
			// exact): fine.
			{Name: "b", Workers: 2, NsPerOp: 1950, AllocsPerOp: 80},
		},
		[]StreamResult{{Name: "s", Frames: 64, NsPerFrame: 3.9e6, AllocsPerFrame: 400}},
	)
	if fails := compareSnapshots(base, run, 4); len(fails) != 0 {
		t.Fatalf("want pass, got failures: %v", fails)
	}
}

func TestCompareSnapshotsNsRegression(t *testing.T) {
	base := snap([]Result{{Name: "a", Workers: 1, NsPerOp: 1000}}, nil)
	run := snap([]Result{{Name: "a", Workers: 1, NsPerOp: 4100}}, nil)
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Fatalf("want one ns/op failure, got %v", fails)
	}
}

func TestCompareSnapshotsStreamNsRegression(t *testing.T) {
	base := snap(nil, []StreamResult{{Name: "s", Frames: 64, NsPerFrame: 1e6}})
	run := snap(nil, []StreamResult{{Name: "s", Frames: 64, NsPerFrame: 5e6}})
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/frame") {
		t.Fatalf("want one ns/frame failure, got %v", fails)
	}
}

func TestCompareSnapshotsAllocRegression(t *testing.T) {
	base := snap([]Result{{Name: "a", Workers: 1, NsPerOp: 1000, AllocsPerOp: 0, AllocsExact: true}}, nil)
	run := snap([]Result{{Name: "a", Workers: 1, NsPerOp: 1000, AllocsPerOp: 1.02, AllocsExact: true}}, nil)
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("want one allocs/op failure, got %v", fails)
	}
	// Sub-half-allocation jitter (a stray GC repopulating a sync.Pool)
	// rounds away instead of flaking the gate.
	run.Results[0].AllocsPerOp = 0.4
	if fails := compareSnapshots(base, run, 4); len(fails) != 0 {
		t.Fatalf("0.4 allocs/op should round to baseline 0, got %v", fails)
	}
}

func TestCompareSnapshotsAllocGateNeedsExactRows(t *testing.T) {
	// Either side not exact, or a multi-worker row: allocations are
	// informational only.
	for _, tc := range []struct {
		be, re bool
		bw, rw int
	}{
		{be: false, re: true, bw: 1, rw: 1},
		{be: true, re: false, bw: 1, rw: 1},
		{be: true, re: true, bw: 4, rw: 4},
	} {
		base := snap([]Result{{Name: "a", Workers: tc.bw, NsPerOp: 1000, AllocsPerOp: 0, AllocsExact: tc.be}}, nil)
		run := snap([]Result{{Name: "a", Workers: tc.rw, NsPerOp: 1000, AllocsPerOp: 50, AllocsExact: tc.re}}, nil)
		if fails := compareSnapshots(base, run, 4); len(fails) != 0 {
			t.Fatalf("case %+v: want no failures, got %v", tc, fails)
		}
	}
}

func TestCompareSnapshotsRowMismatch(t *testing.T) {
	base := snap([]Result{{Name: "a"}, {Name: "b"}}, nil)
	run := snap([]Result{{Name: "a"}, {Name: "c"}}, nil)
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "regenerate") {
		t.Fatalf("want one name-mismatch failure, got %v", fails)
	}

	run = snap([]Result{{Name: "a"}}, nil)
	fails = compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "result rows") {
		t.Fatalf("want one row-count failure, got %v", fails)
	}
}

func TestCompareSnapshotsSpeedupFloor(t *testing.T) {
	base := snap(nil, nil)
	run := snap(nil, nil)
	// At the floor exactly: passes.
	if fails := compareSnapshots(base, run, 4); len(fails) != 0 {
		t.Fatalf("at-floor speedups should pass, got %v", fails)
	}
	// Below the floor: one failure naming the ratio. The RUN side is
	// gated — the baseline's recorded speedup is irrelevant.
	run.Speedups["synth_plan"] = 1.7
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "below the") {
		t.Fatalf("want one below-floor failure, got %v", fails)
	}
	// Missing entirely: the harness stopped measuring a gated ratio.
	delete(run.Speedups, "synth_plan")
	fails = compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("want one missing-speedup failure, got %v", fails)
	}
}

func TestCompareSnapshotsSchemaMismatch(t *testing.T) {
	base := &Snapshot{Schema: 1}
	run := &Snapshot{Schema: snapshotSchema}
	fails := compareSnapshots(base, run, 4)
	if len(fails) != 1 || !strings.Contains(fails[0], "schema") {
		t.Fatalf("want one schema failure, got %v", fails)
	}
}

func TestBaselineStreamLens(t *testing.T) {
	base := snap(nil, []StreamResult{
		{Name: "s", Frames: 64}, {Name: "c", Frames: 64}, {Name: "b", Frames: 64},
		{Name: "s", Frames: 256}, {Name: "c", Frames: 256}, {Name: "b", Frames: 256},
	})
	got := baselineStreamLens(base)
	if len(got) != 2 || got[0] != 64 || got[1] != 256 {
		t.Fatalf("baselineStreamLens = %v, want [64 256]", got)
	}
}
