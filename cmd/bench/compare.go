package main

import (
	"fmt"
	"math"
	"sort"
)

// This file is the -baseline regression gate. Rows are matched by position
// with the names cross-checked: the worker column is machine-dependent
// (rows measured at GOMAXPROCS workers carry whatever width the baseline
// machine had), so (name, workers) keys would spuriously mismatch across
// machines, while row order is fixed by runSnapshot. A name mismatch or a
// row-count change therefore means the harness and the committed baseline
// disagree, and the fix is to regenerate the baseline, not to loosen the
// gate.
//
// Two checks per row:
//
//   - ns/op (ns/frame for streaming rows) may grow up to maxNsRatio times
//     the baseline. The ratio is deliberately generous — CI machines are
//     noisy and slower than the machine that wrote the baseline — so the
//     timing gate only catches order-of-magnitude cliffs.
//   - allocs/op is compared exactly (after rounding) when BOTH rows are
//     marked AllocsExact and single-worker. Those rows are pooled steady
//     states whose allocation count is deterministic, so even one new
//     allocation per op is a real regression no matter how fast the
//     machine is.

// speedupFloors gates deliberate algorithmic wins: the named Speedups
// entries of the RUN (not the baseline) must stay at or above their floor.
// Both sides of each ratio are measured in the same run on the same
// machine, so unlike the ns/op gate no cross-machine tolerance is needed —
// a floor violation means the optimization itself regressed. synth_plan is
// the compiled-synthesis contract: the planned kernel (rotation tables +
// scaled complex MAC, see fmcw.SynthPlan) must stay >= 2x the retained
// legacy kernel on the identical workload.
var speedupFloors = map[string]float64{
	"synth_plan": 2.0,
}

// baselineStreamLens extracts the capture lengths the baseline's streaming
// section was measured at, in first-appearance order, so a gating run can
// reproduce the same rows.
func baselineStreamLens(base *Snapshot) []int {
	var lens []int
	seen := make(map[int]bool)
	for _, s := range base.Streaming {
		if !seen[s.Frames] {
			seen[s.Frames] = true
			lens = append(lens, s.Frames)
		}
	}
	return lens
}

// allocsComparable reports whether a result row pair is subject to the
// exact allocation gate.
func allocsComparable(b, r Result) bool {
	return b.AllocsExact && r.AllocsExact && b.Workers <= 1 && r.Workers <= 1
}

// compareSnapshots checks run against base and returns one human-readable
// message per regression; an empty slice means the gate passes.
func compareSnapshots(base, run *Snapshot, maxNsRatio float64) []string {
	if base.Schema != run.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %d, run %d", base.Schema, run.Schema)}
	}
	var fails []string
	if len(run.Results) != len(base.Results) {
		fails = append(fails, fmt.Sprintf("result rows: baseline has %d, run has %d — regenerate the baseline with `make bench`",
			len(base.Results), len(run.Results)))
	}
	for i := 0; i < min(len(run.Results), len(base.Results)); i++ {
		b, r := base.Results[i], run.Results[i]
		if b.Name != r.Name {
			fails = append(fails, fmt.Sprintf("result row %d: run has %q where baseline has %q — regenerate the baseline",
				i, r.Name, b.Name))
			continue
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*maxNsRatio {
			fails = append(fails, fmt.Sprintf("%s (workers=%d): %.0f ns/op exceeds baseline %.0f × %.1f",
				r.Name, r.Workers, r.NsPerOp, b.NsPerOp, maxNsRatio))
		}
		if allocsComparable(b, r) && math.Round(r.AllocsPerOp) > math.Round(b.AllocsPerOp) {
			fails = append(fails, fmt.Sprintf("%s (workers=%d): %.0f allocs/op, baseline %.0f — an allocation crept into a pooled steady state",
				r.Name, r.Workers, math.Round(r.AllocsPerOp), math.Round(b.AllocsPerOp)))
		}
	}
	if len(run.Streaming) != len(base.Streaming) {
		fails = append(fails, fmt.Sprintf("streaming rows: baseline has %d, run has %d — regenerate the baseline with `make bench`",
			len(base.Streaming), len(run.Streaming)))
	}
	for i := 0; i < min(len(run.Streaming), len(base.Streaming)); i++ {
		b, r := base.Streaming[i], run.Streaming[i]
		if b.Name != r.Name || b.Frames != r.Frames {
			fails = append(fails, fmt.Sprintf("streaming row %d: run has %s/%d frames where baseline has %s/%d — regenerate the baseline",
				i, r.Name, r.Frames, b.Name, b.Frames))
			continue
		}
		if b.NsPerFrame > 0 && r.NsPerFrame > b.NsPerFrame*maxNsRatio {
			fails = append(fails, fmt.Sprintf("%s (%d frames): %.0f ns/frame exceeds baseline %.0f × %.1f",
				r.Name, r.Frames, r.NsPerFrame, b.NsPerFrame, maxNsRatio))
		}
	}
	floors := make([]string, 0, len(speedupFloors))
	for name := range speedupFloors {
		floors = append(floors, name)
	}
	sort.Strings(floors)
	for _, name := range floors {
		floor := speedupFloors[name]
		got, ok := run.Speedups[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("speedup %q missing from the run — the harness no longer measures a gated ratio", name))
			continue
		}
		if got < floor {
			fails = append(fails, fmt.Sprintf("speedup %s: %.2fx is below the %.1fx floor", name, got, floor))
		}
	}
	return fails
}
