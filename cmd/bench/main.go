// Command bench measures the simulation stack's hot paths — frame
// synthesis, FFTs, and one end-to-end experiment — and writes a JSON
// snapshot so the performance trajectory can be tracked across PRs.
//
// Usage:
//
//	bench                      # full measurement, writes BENCH_pipeline.json
//	bench -out out.json        # alternate output path
//	bench -quick               # shorter runs for smoke-testing the harness
//
// Sequential numbers pin the worker pools to one worker; parallel numbers
// use one worker per available CPU. Both paths produce bit-identical
// frames (see internal/fmcw), so the speedup column is a pure cost
// comparison. On a single-CPU machine the speedups sit near 1×; the
// snapshot records cpus/gomaxprocs so readers can interpret the numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"rfprotect/internal/core"
	"rfprotect/internal/dsp"
	"rfprotect/internal/experiments"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// Result is one measured configuration.
type Result struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// StreamResult is one capture-and-track run, streaming or batch, with its
// throughput and retained-heap footprint.
type StreamResult struct {
	Name          string  `json:"name"`
	Frames        int     `json:"frames"`
	NsPerFrame    float64 `json:"ns_per_frame"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
}

// Snapshot is the BENCH_pipeline.json schema.
type Snapshot struct {
	Schema     int                `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	CPUs       int                `json:"cpus"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick,omitempty"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	// Streaming holds the streaming-vs-batch comparison at two capture
	// lengths: the streaming rows' peak heap stays flat as frames grow,
	// the batch rows' grows linearly.
	Streaming []StreamResult `json:"streaming,omitempty"`
}

// measure runs fn repeatedly for at least minDur (after one warm-up call)
// and returns the mean ns/op and iteration count.
func measure(minDur time.Duration, fn func()) (float64, int) {
	fn() // warm caches and FFT plans so the steady state is measured
	var iters int
	start := time.Now()
	for {
		fn()
		iters++
		if elapsed := time.Since(start); elapsed >= minDur && iters >= 3 {
			return float64(elapsed.Nanoseconds()) / float64(iters), iters
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output path (- for stdout)")
	quick := flag.Bool("quick", false, "shorter measurement windows")
	seed := flag.Int64("seed", 1, "random seed for synthetic workloads")
	flag.Parse()

	minDur := 2 * time.Second
	if *quick {
		minDur = 200 * time.Millisecond
	}

	snap := Snapshot{
		Schema:     1,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Speedups:   map[string]float64{},
	}
	add := func(name string, workers int, ns float64, iters int) {
		snap.Results = append(snap.Results, Result{Name: name, Workers: workers, Iters: iters, NsPerOp: ns})
		fmt.Fprintf(os.Stderr, "%-36s workers=%-3d %12.0f ns/op  (%d iters)\n", name, workers, ns, iters)
	}

	// Frame synthesis: the per-frame beat-signal accumulation that
	// dominates every experiment. 64 returns ≈ a cluttered multipath room.
	params := fmcw.DefaultParams()
	returns := synthReturns(64, *seed)
	rng := rand.New(rand.NewSource(*seed))
	seqNs, seqIt := measure(minDur, func() { fmcw.SynthesizeWorkers(params, returns, 0, rng, 1) })
	add("frame_synthesis", 1, seqNs, seqIt)
	parNs, parIt := measure(minDur, func() { fmcw.SynthesizeWorkers(params, returns, 0, rng, 0) })
	add("frame_synthesis", runtime.GOMAXPROCS(0), parNs, parIt)
	snap.Speedups["frame_synthesis"] = seqNs / parNs

	// Single 512-point range FFT, cached plan (steady state of the radar
	// pipeline).
	x := synthSignal(512, *seed)
	buf := make([]complex128, len(x))
	fftNs, fftIt := measure(minDur, func() {
		copy(buf, x)
		dsp.FFTInPlace(buf)
	})
	add("fft_512_cached_plan", 1, fftNs, fftIt)

	// Plan construction cost, for the record: transform a size the process
	// has never seen, forcing a cold plan build, vs the warm transform.
	// (Each iteration uses a fresh odd size, so every call builds a plan.)
	coldSize := 1031
	coldNs, coldIt := measure(minDur/4, func() {
		dsp.FFTInPlace(synthSignal(coldSize, *seed))
		coldSize += 2
	})
	add("fft_cold_plan_build_~1k", 1, coldNs, coldIt)

	// Batch FFT: 64 rows of 512, the shape of a multi-frame Doppler burst.
	batch := make([][]complex128, 64)
	for i := range batch {
		batch[i] = synthSignal(512, *seed+int64(i))
	}
	bseqNs, bseqIt := measure(minDur, func() { dsp.FFTEach(batch, 1) })
	add("batch_fft_64x512", 1, bseqNs, bseqIt)
	bparNs, bparIt := measure(minDur, func() { dsp.FFTEach(batch, 0) })
	add("batch_fft_64x512", runtime.GOMAXPROCS(0), bparNs, bparIt)
	snap.Speedups["batch_fft"] = bseqNs / bparNs

	// Streaming vs batch: the same eavesdropper capture-and-track workload
	// run through the bounded-memory pipeline (one frame in flight) and
	// through the batch path (all frames materialized). Two capture lengths
	// expose the memory asymptotics: streaming's retained heap stays flat,
	// batch's grows with the capture.
	streamLens := []int{64, 256}
	if *quick {
		streamLens = []int{12, 36}
	}
	addStream := func(name string, frames int, ns float64, peak uint64) {
		snap.Streaming = append(snap.Streaming, StreamResult{
			Name:          name,
			Frames:        frames,
			NsPerFrame:    ns,
			FramesPerSec:  1e9 / ns,
			PeakHeapBytes: peak,
		})
		fmt.Fprintf(os.Stderr, "%-36s frames=%-4d %12.0f ns/frame  %8.1f frames/s  peak heap %6.1f MiB\n",
			name, frames, ns, 1e9/ns, float64(peak)/(1<<20))
	}
	for _, n := range streamLens {
		ns, peak := captureRun(*seed, n, modeStreaming)
		addStream("streaming_capture_track", n, ns, peak)
		cns, cpeak := captureRun(*seed, n, modeConcurrent)
		addStream("streaming_capture_track_concurrent", n, cns, cpeak)
		if n == streamLens[len(streamLens)-1] {
			// Stage-overlap speedup of the ≥2-stage chain at the longest
			// capture; near 1× on a single CPU, above it once stages can
			// genuinely run on different cores.
			snap.Speedups["concurrent_pipeline"] = ns / cns
		}
		ns, peak = captureRun(*seed, n, modeBatch)
		addStream("batch_capture_track", n, ns, peak)
	}

	// Sliding-window Doppler: steady-state per-frame cost of the K-frame
	// ring-buffer range–Doppler recompute (slow-time FFT over 8 frames of
	// 512-sample chirps, every range bin).
	dopNs, dopIt := measure(minDur, dopplerStageRun(*seed))
	add("doppler_stage_win8_per_frame", 1, dopNs, dopIt)

	// End-to-end experiment: Fig. 9 radar localization (no GAN training),
	// covering synthesis, range-angle profiles, peaks, and tracking.
	e2eNs, e2eIt := measure(minDur, func() {
		if _, err := experiments.Fig9(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "bench: fig9:", err)
			os.Exit(1)
		}
	})
	add("experiment_fig9_end_to_end", runtime.GOMAXPROCS(0), e2eNs, e2eIt)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// captureRun modes: the sequential streaming pipeline, the stage-overlapped
// concurrent scheduler (goroutine per stage, bounded channels), and the
// batch path.
const (
	modeStreaming = iota
	modeConcurrent
	modeBatch
)

// captureRun measures one eavesdropper session — synthesize nFrames of a
// home with a programmed ghost, range-angle process, track — through the
// selected path, and returns ns/frame plus the heap retained at the end of
// the run (before the results are released). All paths produce
// bit-identical tracks; only cost and footprint differ.
func captureRun(seed int64, nFrames int, mode int) (nsPerFrame float64, peakHeap uint64) {
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: session:", err)
		os.Exit(1)
	}
	sc := sess.Scene
	cx := sc.Radar.Position.X
	ghost := make(geom.Trajectory, 40)
	for i := range ghost {
		f := float64(i) / float64(len(ghost)-1)
		ghost[i] = geom.Point{X: cx + 0.3 + f, Y: 2.7 + 1.5*f}
	}
	if _, err := sess.Ctl.ProgramForRadar(ghost, sc.Radar, sc.Params.FrameRate, 0); err != nil {
		fmt.Fprintln(os.Stderr, "bench: ghost:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(seed))
	pr := radar.NewProcessor(radar.DefaultConfig())

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var tracks []*radar.Track
	var frames []*fmcw.Frame
	switch mode {
	case modeStreaming, modeConcurrent:
		trk := pipeline.NewTrack(radar.TrackerConfig{})
		stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
		p := pipeline.New(sc.Stream(0, nFrames, rng), stages...)
		var err error
		if mode == modeConcurrent {
			_, err = p.RunConcurrent(context.Background(), 2)
		} else {
			_, err = p.Run(nil)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: pipeline:", err)
			os.Exit(1)
		}
		tracks = trk.Tracks()
	default:
		frames = sc.Capture(0, nFrames, rng)
		tracks = radar.TrackDetections(radar.TrackerConfig{}, pr.ProcessFrames(frames, sc.Radar))
	}
	elapsed := time.Since(start)
	// Collect transient garbage first so the reading is the heap the run
	// actually holds on to — the batch path's frames are still referenced
	// here, the streaming path never kept any.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(frames)
	runtime.KeepAlive(tracks)
	if m1.HeapAlloc > m0.HeapAlloc {
		peakHeap = m1.HeapAlloc - m0.HeapAlloc
	}
	return float64(elapsed.Nanoseconds()) / float64(nFrames), peakHeap
}

// dopplerStageRun returns a closure measuring the steady-state per-frame
// cost of the sliding-window DopplerStage: the window is pre-filled, so each
// call is one push plus one full range–Doppler recompute.
func dopplerStageRun(seed int64) func() {
	params := fmcw.DefaultParams()
	rng := rand.New(rand.NewSource(seed))
	returns := synthReturns(4, seed)
	frame := fmcw.SynthesizeWorkers(params, returns, 0, rng, 1)
	dop := pipeline.NewDoppler(radar.NewProcessor(radar.DefaultConfig()), 8, 0)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := dop.Process(ctx, &pipeline.Item{Index: i, Frame: frame}); err != nil {
			fmt.Fprintln(os.Stderr, "bench: doppler:", err)
			os.Exit(1)
		}
	}
	i := 8
	return func() {
		if err := dop.Process(ctx, &pipeline.Item{Index: i, Frame: frame}); err != nil {
			fmt.Fprintln(os.Stderr, "bench: doppler:", err)
			os.Exit(1)
		}
		i++
	}
}

// synthReturns mirrors the mixed workload the fmcw benchmarks use.
func synthReturns(n int, seed int64) []fmcw.Return {
	rng := rand.New(rand.NewSource(seed))
	out := make([]fmcw.Return, n)
	for i := range out {
		out[i] = fmcw.Return{
			Delay:     2 * (1 + 10*rng.Float64()) / fmcw.C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

func synthSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}
