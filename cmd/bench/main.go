// Command bench measures the simulation stack's hot paths — frame
// synthesis, FFTs, the pooled destination-passing kernels, and one
// end-to-end experiment — and writes a JSON snapshot so the performance
// trajectory can be tracked across PRs.
//
// Usage:
//
//	bench                      # full measurement, writes BENCH_pipeline.json
//	bench -out out.json        # alternate output path
//	bench -quick               # shorter runs for smoke-testing the harness
//	bench -quick -baseline BENCH_pipeline.json
//	                           # regression gate: re-measure and fail (exit 1)
//	                           # when ns/op regresses beyond -max-ns-ratio or
//	                           # an allocation-exact row gains an alloc/op
//
// Sequential numbers pin the worker pools to one worker; parallel numbers
// use one worker per available CPU. Both paths produce bit-identical
// frames (see internal/fmcw), so the speedup column is a pure cost
// comparison. On a single-CPU machine the speedups sit near 1×; the
// snapshot records cpus/gomaxprocs so readers can interpret the numbers.
//
// Schema v2 adds allocs_per_op / bytes_per_op to every row. Rows marked
// allocs_exact are single-worker pooled steady states whose allocation
// count is deterministic (the zero-allocation contract of the Into
// kernels); -baseline compares those exactly, so a stray allocation on the
// hot path fails CI even when the timing tolerance would hide it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/cmplx"
	"math/rand"
	"os"
	"runtime"
	"time"

	"rfprotect/internal/core"
	"rfprotect/internal/dsp"
	"rfprotect/internal/experiments"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/parallel"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// snapshotSchema is bumped whenever the JSON layout changes incompatibly;
// -baseline refuses to compare across schemas.
const snapshotSchema = 2

// Result is one measured configuration.
type Result struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// AllocsExact marks rows whose allocation count is deterministic: a
	// single-worker pooled steady state, where the Into kernels promise
	// zero allocations per op. benchdiff compares these rows' allocs/op
	// exactly (after rounding); other rows record allocations for
	// visibility only.
	AllocsExact bool `json:"allocs_exact,omitempty"`
}

// StreamResult is one capture-and-track run — streaming, concurrent,
// pooled, or batch — with its throughput, allocation rate, and
// retained-heap footprint.
type StreamResult struct {
	Name           string  `json:"name"`
	Frames         int     `json:"frames"`
	Workers        int     `json:"workers"`
	NsPerFrame     float64 `json:"ns_per_frame"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`
	BytesPerFrame  float64 `json:"bytes_per_frame"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
}

// Snapshot is the BENCH_pipeline.json schema.
type Snapshot struct {
	Schema     int                `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	CPUs       int                `json:"cpus"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick,omitempty"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	// Streaming holds the streaming-vs-batch comparison at two capture
	// lengths: the streaming rows' peak heap stays flat as frames grow,
	// the batch rows' grows linearly, and the pooled rows' allocs/frame
	// drop to the detection/tracking residue.
	Streaming []StreamResult `json:"streaming,omitempty"`
}

// sample is one measurement: mean wall time and mean allocation cost per
// call over the timed loop.
type sample struct {
	ns     float64
	iters  int
	allocs float64
	bytes  float64
}

// measureSamples is the min-of-K sub-sampling width: measure splits its
// window into this many independently timed sub-windows and reports the
// fastest one's mean ns/op. A single mean absorbs whatever the OS did
// during the window (5–10 % run-to-run jitter on the duplicate
// frame_synthesis/batch_fft rows), which eats gate headroom; the minimum of
// K means is a far more stable estimate of the code's actual cost, since
// interference only ever makes a sub-window slower.
const measureSamples = 3

// measure runs fn repeatedly for at least minDur (after one warm-up call),
// split into measureSamples sub-windows, and returns the min-of-K mean
// ns/op plus the heap-allocation deltas per op, read from runtime.MemStats
// around the whole timed span. The warm-up call runs before the first
// MemStats read, so one-time plan/scratch building never pollutes the
// steady-state allocation count; allocations are averaged over every
// iteration of every sub-window (allocation counts are deterministic, so
// they need no min).
func measure(minDur time.Duration, fn func()) sample {
	fn() // warm caches, FFT plans, and kernel scratch
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	winDur := minDur / measureSamples
	best := 0.0
	totalIters := 0
	for s := 0; s < measureSamples; s++ {
		var iters int
		var elapsed time.Duration
		start := time.Now()
		for {
			fn()
			iters++
			if elapsed = time.Since(start); elapsed >= winDur && iters >= 3 {
				break
			}
		}
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		if s == 0 || ns < best {
			best = ns
		}
		totalIters += iters
	}
	runtime.ReadMemStats(&m1)
	return sample{
		ns:     best,
		iters:  totalIters,
		allocs: float64(m1.Mallocs-m0.Mallocs) / float64(totalIters),
		bytes:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(totalIters),
	}
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output path (- for stdout)")
	quick := flag.Bool("quick", false, "shorter measurement windows")
	seed := flag.Int64("seed", 1, "random seed for synthetic workloads")
	baseline := flag.String("baseline", "", "baseline snapshot to compare against; exit 1 on regression (no snapshot is written unless -out is given explicitly)")
	nsRatio := flag.Float64("max-ns-ratio", 4, "with -baseline: fail when a row exceeds baseline ns/op times this ratio")
	flag.Parse()

	minDur := 2 * time.Second
	if *quick {
		minDur = 200 * time.Millisecond
	}

	streamLens := []int{64, 256}
	if *quick {
		streamLens = []int{12, 36}
	}
	var base *Snapshot
	if *baseline != "" {
		b, err := loadSnapshot(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		if b.Schema != snapshotSchema {
			fmt.Fprintf(os.Stderr, "bench: baseline %s has schema %d, this binary writes schema %d — regenerate it with `make bench`\n",
				*baseline, b.Schema, snapshotSchema)
			os.Exit(2)
		}
		base = b
		// Re-run the streaming section at the baseline's capture lengths so
		// the rows line up even under -quick; ns/frame and allocs/frame are
		// only comparable at equal frame counts.
		if lens := baselineStreamLens(base); len(lens) > 0 {
			streamLens = lens
		}
	}

	snap := runSnapshot(minDur, *seed, streamLens, *quick)

	if base != nil {
		fails := compareSnapshots(base, &snap, *nsRatio)
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s) against %s:\n", len(fails), *baseline)
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "  FAIL:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "\nbenchdiff: ok — %d result rows and %d streaming rows within tolerance of %s\n",
			len(snap.Results), len(snap.Streaming), *baseline)
	}

	// In baseline mode the run is a gate, not a refresh: never overwrite the
	// baseline by accident via -out's default. Write only when -out was
	// given explicitly.
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if *baseline != "" && !outSet {
		return
	}
	writeSnapshot(*out, &snap)
}

// runSnapshot performs every measurement and assembles the snapshot. Row
// order is part of the de-facto schema: -baseline matches rows by position
// (checking names), so new rows belong at stable points and a reorder means
// regenerating the committed baseline.
func runSnapshot(minDur time.Duration, seed int64, streamLens []int, quick bool) Snapshot {
	snap := Snapshot{
		Schema:     snapshotSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Speedups:   map[string]float64{},
	}
	add := func(name string, workers int, s sample, exact bool) {
		snap.Results = append(snap.Results, Result{
			Name: name, Workers: workers, Iters: s.iters,
			NsPerOp: s.ns, AllocsPerOp: s.allocs, BytesPerOp: s.bytes,
			AllocsExact: exact,
		})
		fmt.Fprintf(os.Stderr, "%-36s workers=%-3d %12.0f ns/op  %8.1f allocs/op  (%d iters)\n",
			name, workers, s.ns, s.allocs, s.iters)
	}

	// Frame synthesis: the per-frame beat-signal accumulation that
	// dominates every experiment. 64 returns ≈ a cluttered multipath room.
	params := fmcw.DefaultParams()
	returns := synthReturns(64, seed)
	rng := rand.New(rand.NewSource(seed))
	seq := measure(minDur, func() { fmcw.SynthesizeWorkers(params, returns, 0, rng, 1) })
	add("frame_synthesis", 1, seq, false)
	par := measure(minDur, func() { fmcw.SynthesizeWorkers(params, returns, 0, rng, 0) })
	add("frame_synthesis", runtime.GOMAXPROCS(0), par, false)
	snap.Speedups["frame_synthesis"] = seq.ns / par.ns

	// The same synthesis through the pooled destination-passing path: frame
	// from a FramePool, SynthesizeInto, frame back to the pool. Bit-identical
	// output (see internal/fmcw tests); steady state allocates nothing.
	pool := fmcw.NewFramePool(params)
	into := measure(minDur, func() {
		f := pool.Get(0)
		if err := fmcw.SynthesizeInto(nil, f, returns, rng, 1); err != nil {
			fatal("synthesize-into", err)
		}
		pool.Put(f)
	})
	add("frame_synthesis_into_pooled", 1, into, true)

	// The synthesis-plan gate pair: the retained legacy kernel (serial
	// per-(return × antenna) phasor recurrence) against the compiled plan
	// (per-return rotation tables + scaled complex MAC) on the identical
	// workload. Both rows are measured in this run, so the synth_plan
	// speedup is machine-independent; compare.go enforces its floor.
	legacy := measure(minDur, func() {
		f := pool.Get(0)
		if err := fmcw.SynthesizeLegacyInto(nil, f, returns, rng, 1); err != nil {
			fatal("synthesize-legacy", err)
		}
		pool.Put(f)
	})
	add("frame_synthesis_legacy", 1, legacy, true)
	splan := fmcw.PlanSynth(params)
	planned := measure(minDur, func() {
		f := pool.Get(0)
		if err := splan.SynthesizeInto(nil, f, returns, rng, 1); err != nil {
			fatal("synthesize-planned", err)
		}
		pool.Put(f)
	})
	add("frame_synthesis_planned", 1, planned, true)
	snap.Speedups["synth_plan"] = legacy.ns / planned.ns

	// Single 512-point range FFT, cached plan (steady state of the radar
	// pipeline): in place over a copy, and through the FFTTo destination-
	// passing variant. Both are allocation-free once the plan is cached.
	x := synthSignal(512, seed)
	buf := make([]complex128, len(x))
	fft := measure(minDur, func() {
		copy(buf, x)
		dsp.FFTInPlace(buf)
	})
	add("fft_512_cached_plan", 1, fft, true)
	fftTo := measure(minDur, func() { dsp.FFTTo(buf, x) })
	add("fft_512_to", 1, fftTo, true)

	// Real-input FFT: the half-spectrum transform (pack-two-reals over a
	// size-256 complex FFT) against the full complex transform above, plain
	// and with the window fused into the pack. Both reuse the cached plan
	// and allocate nothing.
	rx := make([]float64, len(x))
	for i, v := range x {
		rx[i] = real(v)
	}
	half := make([]complex128, len(x)/2+1)
	rfftS := measure(minDur, func() { dsp.RFFTTo(half, rx) })
	add("rfft_512_to", 1, rfftS, true)
	snap.Speedups["rfft_vs_fft"] = fftTo.ns / rfftS.ns
	hann := dsp.Hann.Coefficients(len(x))
	wrfftS := measure(minDur, func() { dsp.WindowedRFFTTo(half, rx, hann) })
	add("windowed_rfft_512", 1, wrfftS, true)

	// Plan construction cost, for the record: transform a size the process
	// has never seen, forcing a cold plan build, vs the warm transform.
	// (Each iteration uses a fresh odd size, so every call builds a plan.)
	coldSize := 1031
	cold := measure(minDur/4, func() {
		dsp.FFTInPlace(synthSignal(coldSize, seed))
		coldSize += 2
	})
	add("fft_cold_plan_build_~1k", 1, cold, false)

	// Magnitude kernel delta: the historical cmplx.Abs formulation against
	// the math.Hypot one dsp.Magnitude now uses. Same dst, same input; the
	// difference is pure per-element cost.
	mag := make([]float64, len(x))
	abs := measure(minDur, func() {
		for i, v := range x {
			mag[i] = cmplx.Abs(v)
		}
	})
	add("magnitude_512_cmplx_abs", 1, abs, true)
	hyp := measure(minDur, func() { dsp.MagnitudeTo(mag, x) })
	add("magnitude_512_hypot", 1, hyp, true)
	snap.Speedups["magnitude_hypot"] = abs.ns / hyp.ns

	// Batch FFT: 64 rows of 512, the shape of a multi-frame Doppler burst.
	batch := make([][]complex128, 64)
	for i := range batch {
		batch[i] = synthSignal(512, seed+int64(i))
	}
	bseq := measure(minDur, func() { dsp.FFTEach(batch, 1) })
	add("batch_fft_64x512", 1, bseq, false)
	bpar := measure(minDur, func() { dsp.FFTEach(batch, 0) })
	add("batch_fft_64x512", runtime.GOMAXPROCS(0), bpar, false)
	snap.Speedups["batch_fft"] = bseq.ns / bpar.ns

	// Pooled hot-path kernels, one row per stage of the steady-state frame
	// path: background subtraction through a pooled Differencer, the
	// range-FFT + beamform kernel into a reused Profile, and the Doppler
	// burst kernel into a reused map. All three are single-worker pooled
	// steady states — the allocation count must be exactly zero.
	frameA := fmcw.SynthesizeWorkers(params, returns, 0, rand.New(rand.NewSource(seed)), 1)
	frameB := fmcw.SynthesizeWorkers(params, returns[:len(returns)/2], 1/params.FrameRate, rand.New(rand.NewSource(parallel.SplitSeed(seed, 1))), 1)
	var dif fmcw.Differencer
	dif.UsePool(pool)
	flip := false
	diffS := measure(minDur, func() {
		f := frameA
		if flip {
			f = frameB
		}
		flip = !flip
		if out, ok := dif.Step(f); ok {
			pool.Put(out)
		}
	})
	add("differencer_step_pooled", 1, diffS, true)

	cfg := radar.DefaultConfig()
	cfg.Workers = 1
	plan := radar.CompileFrontEndPlan(cfg, params)
	diffFrame := frameA.Sub(frameB)
	prof := &radar.Profile{}
	raS := measure(minDur, func() {
		if err := plan.RangeAngleInto(nil, diffFrame, prof); err != nil {
			fatal("range-angle-into", err)
		}
	})
	add("range_angle_plan_pooled", 1, raS, true)

	chirps := make([]*fmcw.Frame, 8)
	for i := range chirps {
		chirps[i] = fmcw.SynthesizeWorkers(params, returns, float64(i)/params.FrameRate, rng, 1)
	}
	var rdMap radar.RangeDopplerMap
	rdS := measure(minDur, func() {
		if err := plan.RangeDopplerInto(nil, &rdMap, chirps, 0, 1/params.FrameRate); err != nil {
			fatal("range-doppler-into", err)
		}
	})
	add("doppler_win8_specialized", 1, rdS, true)

	// The pipeline's own per-frame machinery — source pull, Item checkout
	// from the free list, stage dispatch, recycle, Item return — over a
	// replayed frame and a counting no-op stage, so nothing but the
	// machinery itself runs. One warm-up run materializes the steady-state
	// Item; after that a 16-frame Run must allocate exactly nothing.
	bsrc := &replaySource{f: frameA, n: 16}
	bp := pipeline.New(bsrc, &countStage{})
	if _, err := bp.Run(nil); err != nil {
		fatal("pipeline-run", err)
	}
	itemS := measure(minDur, func() {
		bsrc.i = 0
		if _, err := bp.Run(nil); err != nil {
			fatal("pipeline-run", err)
		}
	})
	add("pipeline_run_item_pooled", 1, itemS, true)

	// Streaming vs batch: the same eavesdropper capture-and-track workload
	// run through the bounded-memory pipeline (one frame in flight), the
	// stage-overlapped scheduler, the pooled pipeline (recycled frame,
	// profile, and Doppler buffers), and the batch path (all frames
	// materialized). Two capture lengths expose the memory asymptotics.
	addStream := func(name string, frames int, r streamSample) {
		snap.Streaming = append(snap.Streaming, StreamResult{
			Name:           name,
			Frames:         frames,
			Workers:        runtime.GOMAXPROCS(0),
			NsPerFrame:     r.ns,
			FramesPerSec:   1e9 / r.ns,
			AllocsPerFrame: r.allocs,
			BytesPerFrame:  r.bytes,
			PeakHeapBytes:  r.peak,
		})
		fmt.Fprintf(os.Stderr, "%-36s frames=%-4d %12.0f ns/frame  %8.1f frames/s  %8.1f allocs/frame  peak heap %6.1f MiB\n",
			name, frames, r.ns, 1e9/r.ns, r.allocs, float64(r.peak)/(1<<20))
	}
	for _, n := range streamLens {
		s := captureRun(seed, n, modeStreaming)
		addStream("streaming_capture_track", n, s)
		c := captureRun(seed, n, modeConcurrent)
		addStream("streaming_capture_track_concurrent", n, c)
		p := captureRun(seed, n, modePooled)
		addStream("streaming_capture_track_pooled", n, p)
		if n == streamLens[len(streamLens)-1] {
			// Stage-overlap speedup of the ≥2-stage chain at the longest
			// capture; near 1× on a single CPU, above it once stages can
			// genuinely run on different cores. The pooled ratio is the
			// allocation story instead: how much per-frame garbage the
			// buffer-recycling path eliminates.
			snap.Speedups["concurrent_pipeline"] = s.ns / c.ns
			if p.allocs > 0 {
				snap.Speedups["pooled_allocs_reduction"] = s.allocs / p.allocs
			}
		}
		b := captureRun(seed, n, modeBatch)
		addStream("batch_capture_track", n, b)
	}

	// Sliding-window Doppler: steady-state per-frame cost of the K-frame
	// ring-buffer range–Doppler recompute (slow-time FFT over 8 frames of
	// 512-sample chirps, every range bin), through the pooled stage — map
	// from a DopplerPool, recycled per frame — so the row is a
	// single-worker pooled steady state and its allocation count gates
	// exactly like the other Into rows.
	dop := measure(minDur, dopplerStageRun(seed))
	add("doppler_stage_win8_per_frame", 1, dop, true)

	// End-to-end experiment: Fig. 9 radar localization (no GAN training),
	// covering synthesis, range-angle profiles, peaks, and tracking.
	e2e := measure(minDur, func() {
		if _, err := experiments.Fig9(seed); err != nil {
			fatal("fig9", err)
		}
	})
	add("experiment_fig9_end_to_end", runtime.GOMAXPROCS(0), e2e, false)

	// Adversary-suite smoke: one trajectory per arm through the full
	// arms-race loop — naive tag, hardened tag, human control, and the
	// replay-spoofer probes — pinning the end-to-end cost of the
	// spoof-detection stack (capture, Doppler, tracking, scoring).
	arms := measure(minDur, func() {
		if _, err := experiments.ArmsRace(experiments.Sizes{TrajPerRoom: 1}, seed); err != nil {
			fatal("armsrace", err)
		}
	})
	add("experiment_armsrace_smoke", runtime.GOMAXPROCS(0), arms, false)

	return snap
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "bench: %s: %v\n", what, err)
	os.Exit(1)
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func writeSnapshot(path string, snap *Snapshot) {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("write", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal("encode", err)
	}
}

// captureRun modes: the sequential streaming pipeline, the stage-overlapped
// concurrent scheduler (goroutine per stage, bounded channels), the pooled
// pipeline (same sequential chain with recycled frame/profile buffers), and
// the batch path.
const (
	modeStreaming = iota
	modeConcurrent
	modePooled
	modeBatch
)

// streamSample is one capture-and-track measurement: per-frame wall time
// and allocation cost, plus the heap retained at the end of the run.
type streamSample struct {
	ns     float64
	allocs float64
	bytes  float64
	peak   uint64
}

// captureRun measures one eavesdropper session — synthesize nFrames of a
// home with a programmed ghost, range-angle process, track — through the
// selected path. All paths produce bit-identical tracks; only cost and
// footprint differ.
func captureRun(seed int64, nFrames int, mode int) streamSample {
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		fatal("session", err)
	}
	sc := sess.Scene
	cx := sc.Radar.Position.X
	ghost := make(geom.Trajectory, 40)
	for i := range ghost {
		f := float64(i) / float64(len(ghost)-1)
		ghost[i] = geom.Point{X: cx + 0.3 + f, Y: 2.7 + 1.5*f}
	}
	if _, err := sess.Ctl.ProgramForRadar(ghost, sc.Radar, sc.Params.FrameRate, 0); err != nil {
		fatal("ghost", err)
	}
	rng := rand.New(rand.NewSource(seed))
	pr := radar.NewProcessor(radar.DefaultConfig())

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var tracks []*radar.Track
	var frames []*fmcw.Frame
	switch mode {
	case modeStreaming, modeConcurrent:
		trk := pipeline.NewTrack(radar.TrackerConfig{})
		stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
		p := pipeline.New(sc.Stream(0, nFrames, rng), stages...)
		var err error
		if mode == modeConcurrent {
			_, err = p.RunConcurrent(context.Background(), 2)
		} else {
			_, err = p.Run(nil)
		}
		if err != nil {
			fatal("pipeline", err)
		}
		tracks = trk.Tracks()
	case modePooled:
		pools := pipeline.NewPools(sc.Params)
		trk := pipeline.NewTrack(radar.TrackerConfig{})
		stages := append(pipeline.FrontEndStagesPooled(pr, sc.Radar, pools), trk)
		src := sc.Stream(0, nFrames, rng).UsePool(pools.Frames)
		if _, err := pipeline.New(src, stages...).UsePools(pools).Run(nil); err != nil {
			fatal("pooled pipeline", err)
		}
		tracks = trk.Tracks()
	default:
		frames = sc.Capture(0, nFrames, rng)
		tracks = radar.TrackDetections(radar.TrackerConfig{}, pr.ProcessFrames(frames, sc.Radar))
	}
	elapsed := time.Since(start)
	// Collect transient garbage first so the reading is the heap the run
	// actually holds on to — the batch path's frames are still referenced
	// here, the streaming path never kept any. (Mallocs/TotalAlloc are
	// monotonic, so the forced GC doesn't disturb the per-frame rates.)
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(frames)
	runtime.KeepAlive(tracks)
	r := streamSample{
		ns:     float64(elapsed.Nanoseconds()) / float64(nFrames),
		allocs: float64(m1.Mallocs-m0.Mallocs) / float64(nFrames),
		bytes:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(nFrames),
	}
	if m1.HeapAlloc > m0.HeapAlloc {
		r.peak = m1.HeapAlloc - m0.HeapAlloc
	}
	return r
}

// dopplerStageRun returns a closure measuring the steady-state per-frame
// cost of the sliding-window DopplerStage: the window is pre-filled, so each
// call is one push plus one full range–Doppler recompute. The stage runs in
// its pooled form with a reused Item, mirroring how the streaming pipeline
// drives it (the pipeline recycles the map when the item completes; here
// the closure recycles it directly), so a warmed iteration allocates
// exactly nothing.
func dopplerStageRun(seed int64) func() {
	params := fmcw.DefaultParams()
	rng := rand.New(rand.NewSource(seed))
	returns := synthReturns(4, seed)
	frame := fmcw.SynthesizeWorkers(params, returns, 0, rng, 1)
	cfg := radar.DefaultConfig()
	cfg.Workers = 1
	dpool := radar.NewDopplerPool()
	dop := pipeline.NewDopplerPooled(radar.NewProcessor(cfg), 8, 0, dpool)
	ctx := context.Background()
	it := &pipeline.Item{Frame: frame}
	i := 0
	step := func() {
		it.Index = i
		it.RangeDoppler = nil
		if err := dop.Process(ctx, it); err != nil {
			fatal("doppler", err)
		}
		dpool.Put(it.RangeDoppler)
		i++
	}
	for i < 8 {
		step()
	}
	return step
}

// synthReturns mirrors the mixed workload the fmcw benchmarks use.
// replaySource replays one caller-owned frame n times without allocating;
// rewinding i rearms it. It isolates the pipeline machinery's cost from
// synthesis and DSP.
type replaySource struct {
	f    *fmcw.Frame
	n, i int
}

func (s *replaySource) Next(ctx context.Context) (*fmcw.Frame, error) {
	if s.i >= s.n {
		return nil, io.EOF
	}
	s.i++
	return s.f, nil
}

// countStage touches every item without retaining it.
type countStage struct{ n int }

func (s *countStage) Name() string { return "count" }

func (s *countStage) Process(ctx context.Context, it *pipeline.Item) error {
	s.n++
	return nil
}

func synthReturns(n int, seed int64) []fmcw.Return {
	rng := rand.New(rand.NewSource(seed))
	out := make([]fmcw.Return, n)
	for i := range out {
		out[i] = fmcw.Return{
			Delay:     2 * (1 + 10*rng.Float64()) / fmcw.C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

func synthSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}
