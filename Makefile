GO ?= go

.PHONY: build vet lint test race short bench bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + static-analysis gate: fails when any file needs gofmt or go
# vet reports a problem. (Plain stdlib tooling — no external linters.)
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The concurrency in internal/parallel, internal/fmcw, internal/dsp,
# internal/radar and internal/experiments must stay race-clean; run this
# before every change that touches a worker pool.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=Pipeline -benchmem -run='^$$' .
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/fmcw ./internal/dsp

# Refresh the tracked performance snapshot.
bench-json:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json

ci: lint build race
