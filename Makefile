GO ?= go

# Coverage floor (percent of statements) enforced by `make cover` on the
# packages whose correctness rests on their test harness: the concurrent
# scheduler, the FFT batch layer under it, and the spoof-detection suite.
COVER_MIN ?= 80
COVER_PKGS ?= ./internal/pipeline ./internal/dsp ./internal/detect

.PHONY: build vet lint lint-deep test race short bench bench-go bench-json benchdiff cover fuzz daemon-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + static-analysis gate: fails when any file needs gofmt, go
# vet reports a problem, or the repo-specific invariant suite (cmd/rfvet:
# seedsplit, ctxflow, goroleak, wallclock, poolcheck, lockorder, saturate —
# see DESIGN.md "Static analysis") finds a violation. Every //rfvet:allow
# must carry a `-- justification`. (Plain stdlib tooling — no external
# linters; rfvet is built from this repo.) Fast: AST/type analysis only, no
# compiler invocation — the escape-analysis gate lives in lint-deep.
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/rfvet -require-justification ./...

# lint plus the allocfree pass: rebuild with -gcflags=-m and fail if any
# //rfvet:allocfree-annotated hot path has a heap-escape diagnostic. Slower
# than lint (it runs the compiler), so it is its own target; ci runs it.
lint-deep: lint
	$(GO) run ./cmd/rfvet -require-justification -allocfree ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The concurrency in internal/parallel, internal/fmcw, internal/dsp,
# internal/radar and internal/experiments must stay race-clean; run this
# before every change that touches a worker pool.
race:
	$(GO) test -race -timeout 45m ./...

# Regenerate the tracked performance snapshot (schema v2: ns/op plus
# allocs/op and bytes/op per row). Run this after any deliberate
# performance change so benchdiff gates against the new reality.
bench:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json

bench-json: bench

# The go-test benchmark suite (paper figures + pipeline micro-benches).
bench-go:
	$(GO) test -bench=Pipeline -benchmem -run='^$$' .
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/fmcw ./internal/dsp

# Allocation/throughput regression gate: re-measure with short windows and
# compare against the committed snapshot. ns/op gets a generous 4x ratio so
# slow CI machines don't flake; allocs/op on the pooled single-worker rows
# (allocs_exact) is compared exactly — one new allocation on the hot path
# fails the build.
benchdiff:
	$(GO) run ./cmd/bench -quick -baseline BENCH_pipeline.json

# Per-package statement coverage with a hard floor: each package in
# COVER_PKGS must individually clear COVER_MIN%. A failing test run prints
# its full go test output so CI coverage failures are diagnosable from the
# log instead of dying behind a swallowed redirect.
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -coverprofile=cover.out $$pkg 2>&1) || { \
			echo "$$out"; echo "cover: go test failed in $$pkg"; exit 1; }; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f cover.out; \
		echo "$$pkg coverage: $$pct% (floor $(COVER_MIN)%)"; \
		ok=$$(awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN {print (p+0 >= m+0) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "coverage below floor for $$pkg"; exit 1; fi; \
	done

# Bounded fuzz exploration of the stage-composition state space and the
# spoof-detector input space; the seed corpora alone run on every plain
# `go test`.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStageComposition -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzDetect -fuzztime 10s ./internal/detect

# Daemon smoke: build rfprotectd, then drive the full lifecycle under the
# race detector — 8 concurrent rooms × 64 frames whose exported tracks are
# bit-identical to the library path, an ingest drain that loses no accepted
# frame, and start → SIGTERM → drain → clean exit with zero leaked
# goroutines.
daemon-smoke:
	$(GO) build -o /dev/null ./cmd/rfprotectd
	$(GO) test -race -count=1 \
		-run 'TestSmokeConcurrentRoomsBitIdentical|TestIngestDrainNoFrameLoss|TestDaemonSIGTERMDrain' \
		./internal/service ./cmd/rfprotectd

ci: lint-deep build race cover fuzz benchdiff daemon-smoke
